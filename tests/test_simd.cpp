// Cross-tier bit-identity tests for the SIMD dispatch layer (DESIGN.md
// "SIMD dispatch tiers"): every kernel must produce bit-identical results
// in every tier the CPU supports, the vector codecs must match the seed
// scalar semantics exactly (std::round half-away-from-zero, per-bit GIB
// format, sequential tie budget), and the forced-tier hooks must clamp to
// hardware.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/gib.hpp"
#include "sync/compression.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "util/simd.hpp"

namespace {

using osp::util::Rng;
using osp::util::simd::Kernels;
using osp::util::simd::Tier;
namespace simd = osp::util::simd;

/// Tiers to cross-check: scalar plus everything the CPU supports.
std::vector<Tier> testable_tiers() {
  std::vector<Tier> tiers{Tier::kScalar};
  for (Tier t : {Tier::kAvx2, Tier::kAvx2Fma, Tier::kAvx512}) {
    if (t <= simd::hardware_tier()) tiers.push_back(t);
  }
  return tiers;
}

// Sizes that cover empty input, sub-width tails, exact vector widths, and
// the width+1 straddle for 8/16/32/64-wide inner loops.
const std::size_t kSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17,
                              31, 32, 33, 63, 64, 65, 127, 128, 129, 1000};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx2Fma, Tier::kAvx512}) {
    const auto parsed = simd::parse_tier(simd::tier_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(simd::parse_tier("").has_value());
  EXPECT_FALSE(simd::parse_tier("avx9000").has_value());
  EXPECT_EQ(simd::parse_tier("fma"), Tier::kAvx2Fma);
}

TEST(SimdDispatch, ForceTierClampsToHardware) {
  const Tier hw = simd::hardware_tier();
  {
    simd::ScopedTier forced(Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), Tier::kScalar);
  }
  EXPECT_EQ(simd::force_tier(Tier::kAvx512), std::min(Tier::kAvx512, hw));
  simd::reset_tier();
  EXPECT_LE(simd::active_tier(), hw);
}

TEST(SimdCrossTier, ElementwiseKernels) {
  const Kernels& ref = simd::kernels(Tier::kScalar);
  for (std::size_t n : kSizes) {
    const std::vector<float> a = random_floats(n, 100 + n);
    const std::vector<float> b = random_floats(n, 200 + n);
    std::vector<float> want_axpy = b, want_scale = a;
    std::vector<float> want_add(n), want_sub(n), want_d1(n), want_d2 = b;
    ref.axpy(0.37f, a.data(), want_axpy.data(), n);
    ref.scale(want_scale.data(), -1.75f, n);
    ref.add(a.data(), b.data(), want_add.data(), n);
    ref.sub(a.data(), b.data(), want_sub.data(), n);
    ref.add_copy2(a.data(), want_d2.data(), want_d1.data(), want_d2.data(), n);
    for (Tier t : testable_tiers()) {
      const Kernels& k = simd::kernels(t);
      std::vector<float> got_axpy = b, got_scale = a;
      std::vector<float> got_add(n), got_sub(n), got_d1(n), got_d2 = b;
      k.axpy(0.37f, a.data(), got_axpy.data(), n);
      k.scale(got_scale.data(), -1.75f, n);
      k.add(a.data(), b.data(), got_add.data(), n);
      k.sub(a.data(), b.data(), got_sub.data(), n);
      // add_copy2 with d2 aliasing b, as the EF fold uses it.
      k.add_copy2(a.data(), got_d2.data(), got_d1.data(), got_d2.data(), n);
      const char* tn = simd::tier_name(t);
      EXPECT_EQ(std::memcmp(got_axpy.data(), want_axpy.data(),
                            n * sizeof(float)), 0) << tn << " axpy n=" << n;
      EXPECT_EQ(std::memcmp(got_scale.data(), want_scale.data(),
                            n * sizeof(float)), 0) << tn << " scale n=" << n;
      EXPECT_EQ(std::memcmp(got_add.data(), want_add.data(),
                            n * sizeof(float)), 0) << tn << " add n=" << n;
      EXPECT_EQ(std::memcmp(got_sub.data(), want_sub.data(),
                            n * sizeof(float)), 0) << tn << " sub n=" << n;
      EXPECT_EQ(std::memcmp(got_d1.data(), want_d1.data(),
                            n * sizeof(float)), 0) << tn << " add_copy2 d1";
      EXPECT_EQ(std::memcmp(got_d2.data(), want_d2.data(),
                            n * sizeof(float)), 0) << tn << " add_copy2 d2";
    }
  }
}

TEST(SimdCrossTier, Reductions) {
  const Kernels& ref = simd::kernels(Tier::kScalar);
  for (std::size_t n : kSizes) {
    const std::vector<float> a = random_floats(n, 300 + n);
    const std::vector<float> b = random_floats(n, 400 + n);
    const double want_dot = ref.dot(a.data(), b.data(), n);
    const double want_aps = ref.abs_prod_sum(a.data(), b.data(), n);
    const double want_l1 = ref.l1(a.data(), n);
    const double want_l2sq = ref.l2sq(a.data(), n);
    const float want_max = ref.max_abs(a.data(), n);
    for (Tier t : testable_tiers()) {
      const Kernels& k = simd::kernels(t);
      const char* tn = simd::tier_name(t);
      // Bit-identical, not just close: compare the exact doubles.
      EXPECT_EQ(k.dot(a.data(), b.data(), n), want_dot)
          << tn << " dot n=" << n;
      EXPECT_EQ(k.abs_prod_sum(a.data(), b.data(), n), want_aps)
          << tn << " abs_prod_sum n=" << n;
      EXPECT_EQ(k.l1(a.data(), n), want_l1) << tn << " l1 n=" << n;
      EXPECT_EQ(k.l2sq(a.data(), n), want_l2sq) << tn << " l2sq n=" << n;
      EXPECT_EQ(k.max_abs(a.data(), n), want_max) << tn << " max_abs n=" << n;
    }
  }
}

TEST(SimdCrossTier, QuantizeDequantize) {
  for (std::size_t n : kSizes) {
    std::vector<float> base = random_floats(n, 500 + n);
    // Plant exact halfway values: q*inv lands on .5 boundaries where
    // round-half-even and round-half-away disagree.
    const float scale = 0.25f, inv = 4.0f;
    for (std::size_t i = 0; i + 4 < n; i += 5) {
      base[i] = 0.125f;       // 0.5 after inv -> must round to 1, not 0
      base[i + 1] = -0.125f;  // -0.5 -> -1
      base[i + 2] = 0.375f;   // 1.5 -> 2 (both rules agree)
      base[i + 3] = 0.625f;   // 2.5 -> 3, not 2
      base[i + 4] = -0.625f;  // -2.5 -> -3
    }
    // Reference: the seed scalar loop with std::round.
    std::vector<float> want = base;
    for (float& v : want) {
      v = std::round(std::clamp(v * inv, -127.0f, 127.0f)) * scale;
    }
    for (Tier t : testable_tiers()) {
      std::vector<float> got = base;
      simd::kernels(t).quantize_dequantize(got.data(), scale, inv, n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
          << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SimdCrossTier, TopKScanKernels) {
  for (std::size_t n : kSizes) {
    if (n == 0) continue;
    std::vector<float> grad = random_floats(n, 600 + n);
    // Force threshold ties so the sequential tie budget is exercised.
    const float threshold = 0.5f;
    for (std::size_t i = 0; i < n; i += 3) grad[i] = i % 2 == 0 ? 0.5f : -0.5f;
    std::vector<float> mags(n);
    const Kernels& ref = simd::kernels(Tier::kScalar);
    ref.abs_into(grad.data(), mags.data(), n);
    const std::size_t want_gt = ref.count_gt(mags.data(), threshold, n);
    std::vector<float> want_grad = grad;
    const std::size_t want_ties =
        ref.threshold_zero(want_grad.data(), mags.data(), threshold, 2, n);
    for (Tier t : testable_tiers()) {
      const Kernels& k = simd::kernels(t);
      std::vector<float> got_mags(n);
      k.abs_into(grad.data(), got_mags.data(), n);
      EXPECT_EQ(std::memcmp(got_mags.data(), mags.data(), n * sizeof(float)),
                0) << simd::tier_name(t) << " abs_into n=" << n;
      EXPECT_EQ(k.count_gt(got_mags.data(), threshold, n), want_gt)
          << simd::tier_name(t) << " count_gt n=" << n;
      std::vector<float> got_grad = grad;
      EXPECT_EQ(k.threshold_zero(got_grad.data(), got_mags.data(), threshold,
                                 2, n), want_ties)
          << simd::tier_name(t) << " threshold_zero ties n=" << n;
      EXPECT_EQ(std::memcmp(got_grad.data(), want_grad.data(),
                            n * sizeof(float)), 0)
          << simd::tier_name(t) << " threshold_zero grad n=" << n;
    }
  }
}

TEST(SimdCrossTier, MaskZero) {
  for (std::size_t n : kSizes) {
    const std::vector<float> base = random_floats(n, 700 + n);
    Rng rng(800 + n);
    std::vector<std::uint8_t> mask(n);
    for (auto& m : mask) m = rng.bernoulli(0.5) ? 1 : 0;
    std::vector<float> want = base;
    simd::kernels(Tier::kScalar).mask_zero(want.data(), mask.data(), n);
    for (Tier t : testable_tiers()) {
      std::vector<float> got = base;
      simd::kernels(t).mask_zero(got.data(), mask.data(), n);
      EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
          << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SimdCrossTier, PackUnpackBits) {
  for (std::size_t n : kSizes) {
    Rng rng(900 + n);
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = rng.bernoulli(0.5) ? 1 : 0;
    const std::size_t packed = (n + 7) / 8;
    // Reference: the seed per-bit loops.
    std::vector<std::uint8_t> want_bits(packed, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != 0) {
        want_bits[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      }
    }
    std::vector<std::uint8_t> want_bytes(n);
    for (std::size_t i = 0; i < n; ++i) {
      want_bytes[i] =
          static_cast<std::uint8_t>((want_bits[i / 8] >> (i % 8)) & 1u);
    }
    for (Tier t : testable_tiers()) {
      const Kernels& k = simd::kernels(t);
      std::vector<std::uint8_t> got_bits(packed, 0xee);
      k.pack_bits(bytes.data(), got_bits.data(), n);
      EXPECT_EQ(got_bits, want_bits) << simd::tier_name(t) << " pack n=" << n;
      std::vector<std::uint8_t> got_bytes(n, 0xee);
      k.unpack_bits(want_bits.data(), got_bytes.data(), n);
      EXPECT_EQ(got_bytes, want_bytes)
          << simd::tier_name(t) << " unpack n=" << n;
    }
  }
}

TEST(SimdCrossTier, PackNormalizesNonZeroBytes) {
  // pack_bits must treat any nonzero byte as a set bit, like the seed's
  // `bits_[i] != 0` test — not just the value 1.
  const std::size_t n = 70;
  std::vector<std::uint8_t> bytes(n, 0);
  for (std::size_t i = 0; i < n; i += 3) {
    bytes[i] = static_cast<std::uint8_t>(1 + (i * 37) % 255);
  }
  std::vector<std::uint8_t> want((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (bytes[i] != 0) want[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  for (Tier t : testable_tiers()) {
    std::vector<std::uint8_t> got((n + 7) / 8, 0);
    simd::kernels(t).pack_bits(bytes.data(), got.data(), n);
    EXPECT_EQ(got, want) << simd::tier_name(t);
  }
}

TEST(GibRoundTrip, OddBitCountsAcrossTiers) {
  for (std::size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
    Rng rng(42 + n);
    auto gib = osp::core::Gib::all_unimportant(n);
    for (std::size_t i = 0; i < n; ++i) {
      gib.set_important(i, rng.bernoulli(0.4));
    }
    const std::vector<std::uint8_t> wire = gib.serialize();
    EXPECT_EQ(wire.size(), gib.wire_bytes());
    for (Tier t : testable_tiers()) {
      simd::ScopedTier forced(t);
      // Serialize in tier t, deserialize in every tier: the wire format
      // is tier-independent.
      EXPECT_EQ(gib.serialize(), wire) << simd::tier_name(t) << " n=" << n;
      EXPECT_EQ(osp::core::Gib::deserialize(wire), gib)
          << simd::tier_name(t) << " n=" << n;
    }
  }
}

TEST(SparsifyCrossTier, TopKAndRandomKMatchScalar) {
  using osp::sync::CompressionMode;
  for (std::size_t n : {9u, 64u, 257u, 1000u}) {
    for (CompressionMode mode :
         {CompressionMode::TopK, CompressionMode::RandomK}) {
      std::vector<float> base = random_floats(n, 77 + n);
      // Duplicate magnitudes force threshold ties in TopK.
      if (n > 4) {
        base[1] = 0.75f;
        base[3] = -0.75f;
        base[4] = 0.75f;
      }
      std::vector<float> want = base;
      std::size_t want_kept = 0;
      {
        simd::ScopedTier forced(Tier::kScalar);
        Rng rng(5);
        want_kept = osp::sync::sparsify(want, mode, 0.25, rng);
      }
      for (Tier t : testable_tiers()) {
        simd::ScopedTier forced(t);
        std::vector<float> got = base;
        Rng rng(5);
        osp::sync::SparsifyScratch scratch;
        const std::size_t kept = osp::sync::sparsify(
            std::span<float>(got), mode, 0.25, rng, scratch);
        EXPECT_EQ(kept, want_kept) << simd::tier_name(t) << " n=" << n;
        EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(float)), 0)
            << simd::tier_name(t) << " n=" << n;
      }
    }
  }
}

TEST(SerdeF32Into, ReadsIntoPresizedSpanAndValidatesLength) {
  const std::vector<float> vals = random_floats(37, 9);
  osp::util::serde::Writer w;
  w.f32_vec(vals);
  {
    osp::util::serde::Reader r(w.data());
    std::vector<float> out(vals.size());
    r.f32_into(out);
    EXPECT_EQ(std::memcmp(out.data(), vals.data(),
                          vals.size() * sizeof(float)), 0);
    EXPECT_TRUE(r.done());
  }
  {
    // Wrong destination size must throw, not read out of step.
    osp::util::serde::Reader r(w.data());
    std::vector<float> out(vals.size() + 1);
    EXPECT_THROW(r.f32_into(out), osp::util::CheckError);
  }
  {
    // f32_into round-trips the same wire bytes f32_vec produces.
    osp::util::serde::Reader r(w.data());
    EXPECT_EQ(r.f32_vec(), vals);
  }
}

TEST(CompressedName, ExactKeepPercentages) {
  using osp::sync::CompressedBspSync;
  using osp::sync::CompressionMode;
  EXPECT_EQ(CompressedBspSync(CompressionMode::TopK, 0.125).name(),
            "TopK(12.5%)");
  EXPECT_EQ(CompressedBspSync(CompressionMode::TopK, 0.01).name(),
            "TopK(1%)");
  EXPECT_EQ(CompressedBspSync(CompressionMode::RandomK, 0.25, 1, true).name(),
            "RandomK(25%)+EF");
}

}  // namespace
