// Discrete-event simulator, flow-network, and cluster tests — including
// analytic checks of max-min fair sharing, incast collapse, loss inflation,
// and the compute-time model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(0); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, HandlersCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), util::CheckError);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), util::CheckError);
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.clear();
  EXPECT_TRUE(sim.empty());
}

TEST(Network, SingleFlowTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.5);  // 1000 B/s, 0.5 s latency
  double done_at = -1.0;
  net.start_flow({l}, 2000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0 + 0.5, 1e-9);  // 2 s transfer + 0.5 s latency
}

TEST(Network, ZeroByteFlowIsLatencyOnly) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.25);
  double done_at = -1.0;
  net.start_flow({l}, 0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 0.25, 1e-12);
}

TEST(Network, TwoFlowsShareFairly) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  std::vector<double> done(2, -1.0);
  net.start_flow({l}, 1000.0, [&] { done[0] = sim.now(); });
  net.start_flow({l}, 1000.0, [&] { done[1] = sim.now(); });
  sim.run();
  // Both at 500 B/s → both finish at 2 s.
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(Network, ShortFlowFinishesThenLongSpeedsUp) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  double short_done = -1.0, long_done = -1.0;
  net.start_flow({l}, 500.0, [&] { short_done = sim.now(); });
  net.start_flow({l}, 1500.0, [&] { long_done = sim.now(); });
  sim.run();
  // Phase 1: both at 500 B/s. Short (500 B) done at t=1. Long has 1000 B
  // left, now alone at 1000 B/s → done at t=2.
  EXPECT_NEAR(short_done, 1.0, 1e-9);
  EXPECT_NEAR(long_done, 2.0, 1e-9);
}

TEST(Network, MaxMinFairnessAcrossTwoLinks) {
  // Flow A crosses links 1 and 2; flow B crosses link 1; flow C crosses
  // link 2. Link 1 cap 100, link 2 cap 200. Max-min: A and B bottleneck on
  // link 1 (50 each); C gets 200−50 = 150.
  Simulator sim;
  Network net(sim);
  const LinkId l1 = net.add_link(100.0);
  const LinkId l2 = net.add_link(200.0);
  FlowId a = net.start_flow({l1, l2}, 1e9, nullptr);
  FlowId b = net.start_flow({l1}, 1e9, nullptr);
  FlowId c = net.start_flow({l2}, 1e9, nullptr);
  // Rates are set synchronously on the last topology change.
  EXPECT_NEAR(net.flow_rate(a), 50.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(b), 50.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(c), 150.0, 1e-9);
}

TEST(Network, LossInflatesTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.25);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.25, 1e-9);  // (1+lr) wire inflation
}

TEST(Network, IncastCollapseShrinksAggregate) {
  // With alpha=0.1 and 8 flows, usable capacity is b / (1 + 0.1·7) = b/1.7.
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.0, 0.1);
  std::vector<double> done(8, -1.0);
  for (int f = 0; f < 8; ++f) {
    net.start_flow({l}, 125.0, [&done, f, &sim] { done[f] = sim.now(); });
  }
  sim.run();
  // 8×125 = 1000 B at 1000/1.7 B/s aggregate → 1.7 s.
  for (double d : done) EXPECT_NEAR(d, 1.7, 1e-9);
}

TEST(Network, SingleFlowUnaffectedByIncastAlpha) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.0, 0.5);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(Network, ExtraLatencyAddsToCompletion) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.1);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); }, 0.05);
  sim.run();
  EXPECT_NEAR(done_at, 1.15, 1e-9);
}

TEST(Network, BytesDeliveredCountsPayload) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.5);  // heavy loss
  net.start_flow({l}, 300.0, nullptr);
  net.start_flow({l}, 700.0, nullptr);
  sim.run();
  EXPECT_NEAR(net.bytes_delivered(), 1000.0, 1e-9);  // payload, not wire
}

TEST(Network, IdealTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId a = net.add_link(1000.0, 0.1, 0.0);
  const LinkId b = net.add_link(500.0, 0.2, 0.5);
  const double t = net.ideal_transfer_time({a, b}, 1000.0);
  // latency 0.3 + 1000·1.5 / min(1000,500) = 0.3 + 3.0.
  EXPECT_NEAR(t, 3.3, 1e-9);
}

TEST(Network, ManySequentialFlowsDeterministic) {
  auto run_once = [] {
    Simulator sim;
    Network net(sim);
    const LinkId l = net.add_link(100.0);
    double last = 0.0;
    for (int i = 0; i < 50; ++i) {
      net.start_flow({l}, 10.0 + i, [&last, &sim] { last = sim.now(); });
    }
    sim.run();
    return last;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Cluster, TopologyRoutes) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(sim, cfg);
  EXPECT_EQ(cluster.num_workers(), 4u);
  // 5 nodes (4 workers + PS), 2 links each.
  EXPECT_EQ(cluster.network().num_links(), 10u);
  const auto up = cluster.route_to_ps(2);
  const auto down = cluster.route_from_ps(2);
  ASSERT_EQ(up.size(), 2u);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_NE(up[0], down[1]);  // worker uplink != worker downlink
}

TEST(Cluster, SharedPsIngressCreatesIncast) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.link_gbps = 0.000008;  // 1000 B/s for easy math
  cfg.link_latency_s = 0.0;
  cfg.incast_alpha = 0.0;
  Cluster cluster(sim, cfg);
  std::vector<double> done(4, -1.0);
  for (std::size_t w = 0; w < 4; ++w) {
    cluster.network().start_flow(cluster.route_to_ps(w), 1000.0,
                                 [&done, w, &sim] { done[w] = sim.now(); });
  }
  sim.run();
  // All four flows share the PS downlink: 250 B/s each → 4 s.
  for (double d : done) EXPECT_NEAR(d, 4.0, 1e-6);
}

TEST(Cluster, ColocatedPsLoopback) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.colocated_ps = true;
  Cluster cluster(sim, cfg);
  EXPECT_TRUE(cluster.hosts_ps(0));
  EXPECT_FALSE(cluster.hosts_ps(1));
  EXPECT_TRUE(cluster.route_to_ps(0).empty());
  EXPECT_FALSE(cluster.route_to_ps(1).empty());
  // Only 3 nodes worth of links.
  EXPECT_EQ(cluster.network().num_links(), 6u);
}

TEST(Cluster, SpeedFactors) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.speed_factors = {1.0, 0.5};
  Cluster cluster(sim, cfg);
  EXPECT_DOUBLE_EQ(cluster.speed_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.speed_factor(1), 0.5);
}

TEST(Cluster, RejectsBadSpeedFactorArity) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.speed_factors = {1.0, 1.0};
  EXPECT_THROW(Cluster(sim, cfg), util::CheckError);
}

TEST(ComputeModel, BaseTimeScalesWithBatchAndFlops) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  EXPECT_NEAR(model.base_batch_time(64), 64.0 * 1e9 / 5e11, 1e-15);
  EXPECT_NEAR(model.base_batch_time(128), 2 * model.base_batch_time(64),
              1e-15);
}

TEST(ComputeModel, SpeedFactorDividesTime) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  util::Rng rng(1);
  const double fast = model.batch_time(64, 2.0, rng);
  const double slow = model.batch_time(64, 0.5, rng);
  EXPECT_NEAR(slow / fast, 4.0, 1e-12);
}

TEST(ComputeModel, JitterIsOneSided) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  model.straggler_jitter = 0.2;
  util::Rng rng(2);
  const double base = model.base_batch_time(64);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = model.batch_time(64, 1.0, rng);
    EXPECT_GE(t, base);
    total += t / base - 1.0;
  }
  EXPECT_NEAR(total / 2000.0, 0.2, 0.02);  // exponential mean = jitter
}

TEST(GbpsConversion, TenGbpsIs1250MBps) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(10.0), 1.25e9);
}

// ---- fault injection: dynamic link state ----

TEST(NetworkFaults, LinkDownStallsFlowAndResumes) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  // Down for [0.5, 1.0): the flow moves 500 B, stalls 0.5 s, then finishes
  // the remaining 500 B → 1.5 s total.
  sim.schedule(0.5, [&] { net.set_link_up(l, false); });
  sim.schedule(1.0, [&] { net.set_link_up(l, true); });
  sim.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(NetworkFaults, FlowStartedOnDownLinkWaitsForUpEdge) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  net.set_link_up(l, false);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.schedule(2.0, [&] { net.set_link_up(l, true); });
  sim.run();
  EXPECT_FALSE(net.link_up(l) == false);
  EXPECT_NEAR(done_at, 3.0, 1e-9);  // 2 s stalled + 1 s transfer
}

TEST(NetworkFaults, DegradationScalesBandwidthAndRestores) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  net.set_link_degradation(l, 0.5);
  EXPECT_NEAR(net.link_capacity(l), 500.0, 1e-9);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  // Restore at t=1: 500 B moved at 500 B/s, the rest at 1000 B/s.
  sim.schedule(1.0, [&] { net.set_link_degradation(l, 1.0); });
  sim.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
  EXPECT_NEAR(net.link_capacity(l), 1000.0, 1e-9);
}

TEST(NetworkFaults, DegradationExtraLossInflatesNewFlows) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  net.set_link_degradation(l, 1.0, /*extra_loss_rate=*/0.5);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);  // 1000·(1+0.5) wire bytes
}

TEST(NetworkFaults, CancelFlowSpeedsUpSurvivor) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  bool cancelled_fired = false;
  double done_at = -1.0;
  const FlowId doomed =
      net.start_flow({l}, 1000.0, [&] { cancelled_fired = true; });
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  // Both at 500 B/s; at t=1 cancel one → survivor has 500 B left at
  // 1000 B/s → done at 1.5 s.
  sim.schedule(1.0, [&] { EXPECT_TRUE(net.cancel_flow(doomed)); });
  sim.run();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_NEAR(done_at, 1.5, 1e-9);
  EXPECT_EQ(net.flows_cancelled(), 1u);
  EXPECT_FALSE(net.cancel_flow(doomed));  // already gone
}

TEST(NetworkFaults, DropInjectionSuppressesDelivery) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  net.add_injection_window(0.0, 1.0, l, 0.0, /*drop_prob=*/1.0);
  bool delivered = false;
  net.start_flow({l}, 100.0, [&] { delivered = true; });
  // A flow starting after the window passes normally.
  double late_done = -1.0;
  sim.schedule(2.0, [&] {
    net.start_flow({l}, 100.0, [&] { late_done = sim.now(); });
  });
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_NEAR(late_done, 2.1, 1e-9);
  EXPECT_NEAR(net.bytes_delivered(), 100.0, 1e-9);
}

TEST(NetworkFaults, DelayInjectionAddsLatency) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  net.add_injection_window(0.0, 1.0, l, /*delay_s=*/0.25, 0.0);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.25, 1e-9);
  EXPECT_EQ(net.messages_delayed(), 1u);
}

TEST(NetworkFaults, DropSamplingIsSeedDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim);
    const LinkId l = net.add_link(1e6);
    net.set_injection_seed(seed);
    net.add_injection_window(0.0, 100.0, kAllLinks, 0.0, 0.5);
    std::vector<bool> delivered(64, false);
    for (std::size_t i = 0; i < 64; ++i) {
      net.start_flow({l}, 10.0, [&delivered, i] { delivered[i] = true; });
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(run_once(7), run_once(7));       // replay is exact
  EXPECT_NE(run_once(7), run_once(8));       // and seed-sensitive
}

// Property test: under an arbitrary seeded sequence of link flaps,
// degradations, cancellations, and staggered flow starts, the allocation
// must keep every flow's rate non-negative, never oversubscribe a link,
// and — once the links heal — deliver exactly the payload of every flow
// that wasn't dropped or cancelled.
TEST(NetworkFaults, FlapFuzzPreservesInvariants) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim;
    Network net(sim);
    const std::vector<LinkId> links = {net.add_link(1000.0),
                                       net.add_link(500.0),
                                       net.add_link(2000.0)};
    util::Rng rng(seed);
    double expected_payload = 0.0;
    double cancelled_payload = 0.0;
    std::size_t completions = 0;

    // Route table: flows cross one or two links.
    const std::vector<std::vector<LinkId>> routes = {
        {links[0]}, {links[1]}, {links[2]}, {links[0], links[2]},
        {links[1], links[2]}};

    struct StartedFlow {
      FlowId id;
      std::vector<LinkId> route;
      double payload;
    };
    auto started = std::make_shared<std::vector<StartedFlow>>();

    // Staggered flow starts.
    for (int i = 0; i < 40; ++i) {
      const double at = rng.uniform(0.0, 5.0);
      const auto& route = routes[rng.uniform_u64(routes.size())];
      const double payload = rng.uniform(100.0, 2000.0);
      expected_payload += payload;
      sim.schedule_at(at, [&net, &sim, &completions, route, payload,
                           started] {
        const FlowId id = net.start_flow(
            std::vector<LinkId>(route), payload, [&completions] {
              ++completions;
            });
        started->push_back({id, route, payload});
      });
    }
    // Random flap windows (always matched down/up inside [0, 6)).
    for (int i = 0; i < 12; ++i) {
      const LinkId l = links[rng.uniform_u64(links.size())];
      const double down_at = rng.uniform(0.0, 5.0);
      const double up_at = down_at + rng.uniform(0.05, 1.0);
      sim.schedule_at(down_at, [&net, l] { net.set_link_up(l, false); });
      sim.schedule_at(up_at, [&net, l] { net.set_link_up(l, true); });
    }
    // Random degradation windows.
    for (int i = 0; i < 8; ++i) {
      const LinkId l = links[rng.uniform_u64(links.size())];
      const double at = rng.uniform(0.0, 5.0);
      const double factor = rng.uniform(0.1, 1.0);
      sim.schedule_at(at, [&net, l, factor] {
        net.set_link_degradation(l, factor);
      });
      sim.schedule_at(at + rng.uniform(0.05, 1.0), [&net, l] {
        net.set_link_degradation(l, 1.0);
      });
    }
    // A couple of cancellations of whatever happens to be in flight.
    for (int i = 0; i < 3; ++i) {
      sim.schedule_at(rng.uniform(1.0, 5.0),
                      [&net, started, &cancelled_payload] {
        for (const auto& f : *started) {
          if (net.cancel_flow(f.id)) {  // true only for in-flight flows
            cancelled_payload += f.payload;
            break;
          }
        }
      });
    }
    // Invariant probes while the chaos runs.
    for (double t = 0.25; t < 6.0; t += 0.25) {
      sim.schedule_at(t, [&net, &links, started] {
        std::vector<double> load(links.size(), 0.0);
        for (const auto& f : *started) {
          const double r = net.flow_rate(f.id);
          EXPECT_GE(r, 0.0);
          for (const LinkId l : f.route) load[l] += r;
        }
        for (std::size_t li = 0; li < links.size(); ++li) {
          const double cap = net.link_capacity(links[li]);
          EXPECT_LE(load[li], cap + 1e-6)
              << "link " << li << " oversubscribed";
        }
      });
    }
    // Heal everything at t=6 so every surviving flow can finish.
    sim.schedule_at(6.0, [&net, &links] {
      for (const LinkId l : links) {
        net.set_link_up(l, true);
        net.set_link_degradation(l, 1.0);
      }
    });
    sim.run();

    EXPECT_EQ(net.active_flows(), 0u) << "seed " << seed;
    EXPECT_EQ(completions + net.flows_cancelled(), started->size())
        << "seed " << seed;
    EXPECT_NEAR(net.bytes_delivered(), expected_payload - cancelled_payload,
                1e-6 * expected_payload)
        << "seed " << seed;
  }
}

// ---- incremental rate solver vs. from-scratch reference -----------------

/// Drives one seeded random workload — random topology, staggered flow
/// starts over random routes, link flaps — against `net`/`sim` and returns
/// per-flow completion times (index = start order; -1 for flows that never
/// finished). Used to compare the incremental and reference solvers on
/// bit-identical inputs.
std::vector<double> run_random_workload(Simulator& sim, Network& net,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t num_links = 2 + rng.uniform_u64(8);  // 2..9 links
  std::vector<LinkId> links;
  for (std::size_t l = 0; l < num_links; ++l) {
    links.push_back(net.add_link(rng.uniform(200.0, 3000.0),
                                 rng.uniform(0.0, 0.01),
                                 rng.uniform(0.0, 0.1),
                                 rng.uniform(0.0, 0.05)));
  }
  const std::size_t num_flows = 20 + rng.uniform_u64(30);
  auto done = std::make_shared<std::vector<double>>(num_flows, -1.0);
  for (std::size_t i = 0; i < num_flows; ++i) {
    // Random route of 1..3 distinct-ish links (duplicates are legal).
    std::vector<LinkId> route;
    const std::size_t hops = 1 + rng.uniform_u64(3);
    for (std::size_t h = 0; h < hops; ++h) {
      route.push_back(links[rng.uniform_u64(links.size())]);
    }
    const double at = rng.uniform(0.0, 4.0);
    const double payload = rng.uniform(50.0, 3000.0);
    sim.schedule_at(at, [&net, &sim, done, i, route, payload] {
      net.start_flow(std::vector<LinkId>(route), payload,
                     [&sim, done, i] { (*done)[i] = sim.now(); });
    });
  }
  // Matched down/up flap windows so everything can eventually drain.
  for (int i = 0; i < 10; ++i) {
    const LinkId l = links[rng.uniform_u64(links.size())];
    const double down_at = rng.uniform(0.0, 4.0);
    sim.schedule_at(down_at, [&net, l] { net.set_link_up(l, false); });
    sim.schedule_at(down_at + rng.uniform(0.05, 0.8),
                    [&net, l] { net.set_link_up(l, true); });
  }
  sim.run();
  return *done;
}

// Property test: with check-against-reference enabled, every single rate
// recomputation re-runs the from-scratch solver internally and OSP_CHECKs
// that each flow's rate is bitwise identical — across random topologies,
// staggered arrivals, random routes, and link flaps.
TEST(NetworkIncremental, RandomChurnMatchesReferenceBitwise) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    Simulator sim;
    Network net(sim);
    net.set_check_against_reference(true);
    const auto done = run_random_workload(sim, net, seed);
    EXPECT_EQ(net.active_flows(), 0u) << "seed " << seed;
    EXPECT_GT(net.solve_stats().solves, 0u) << "seed " << seed;
    for (double d : done) EXPECT_GT(d, 0.0) << "seed " << seed;
  }
}

// The same workload simulated end-to-end under each solver must produce
// bitwise-identical completion times, delivered bytes, and event counts.
TEST(NetworkIncremental, PairedRunsCompleteBitIdentical) {
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    Simulator sim_inc;
    Network net_inc(sim_inc);
    const auto done_inc = run_random_workload(sim_inc, net_inc, seed);

    Simulator sim_ref;
    Network net_ref(sim_ref);
    net_ref.set_use_reference_solver(true);
    const auto done_ref = run_random_workload(sim_ref, net_ref, seed);

    ASSERT_EQ(done_inc.size(), done_ref.size()) << "seed " << seed;
    for (std::size_t i = 0; i < done_inc.size(); ++i) {
      EXPECT_EQ(done_inc[i], done_ref[i])  // bitwise, not approximate
          << "seed " << seed << " flow " << i;
    }
    EXPECT_EQ(net_inc.bytes_delivered(), net_ref.bytes_delivered())
        << "seed " << seed;
    EXPECT_EQ(sim_inc.events_processed(), sim_ref.events_processed())
        << "seed " << seed;
    // The reference solver can only do full solves; the incremental one
    // must never visit more flow entries than it.
    EXPECT_LE(net_inc.solve_stats().flow_visits,
              net_ref.solve_stats().flow_visits)
        << "seed " << seed;
  }
}

// Disjoint components keep the incremental solver local: with flows spread
// over independent links, it must visit at least 5x fewer flow entries
// than the from-scratch reference (the PR's headline scaling win).
TEST(NetworkIncremental, ShardedComponentsReduceVisits) {
  auto run_sharded = [](bool reference) {
    Simulator sim;
    Network net(sim);
    constexpr std::size_t kShards = 8;
    constexpr std::size_t kFlowsPerShard = 6;
    std::vector<LinkId> links;
    for (std::size_t s = 0; s < kShards; ++s) {
      links.push_back(net.add_link(1000.0));
    }
    net.set_use_reference_solver(reference);
    for (std::size_t s = 0; s < kShards; ++s) {
      for (std::size_t f = 0; f < kFlowsPerShard; ++f) {
        // Stagger starts so churn interleaves across shards.
        sim.schedule_at(static_cast<double>(f * kShards + s) * 0.01,
                        [&net, &links, s, f] {
                          net.start_flow({links[s]},
                                         500.0 + static_cast<double>(f) * 40.0,
                                         nullptr);
                        });
      }
    }
    sim.run();
    return net.solve_stats().flow_visits;
  };
  const std::uint64_t inc = run_sharded(false);
  const std::uint64_t ref = run_sharded(true);
  EXPECT_GE(static_cast<double>(ref), 5.0 * static_cast<double>(inc))
      << "ref=" << ref << " inc=" << inc;
}

}  // namespace
}  // namespace osp::sim
