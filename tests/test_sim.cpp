// Discrete-event simulator, flow-network, and cluster tests — including
// analytic checks of max-min fair sharing, incast collapse, loss inflation,
// and the compute-time model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace osp::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(0); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, HandlersCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), util::CheckError);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), util::CheckError);
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.clear();
  EXPECT_TRUE(sim.empty());
}

TEST(Network, SingleFlowTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.5);  // 1000 B/s, 0.5 s latency
  double done_at = -1.0;
  net.start_flow({l}, 2000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0 + 0.5, 1e-9);  // 2 s transfer + 0.5 s latency
}

TEST(Network, ZeroByteFlowIsLatencyOnly) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.25);
  double done_at = -1.0;
  net.start_flow({l}, 0.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 0.25, 1e-12);
}

TEST(Network, TwoFlowsShareFairly) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  std::vector<double> done(2, -1.0);
  net.start_flow({l}, 1000.0, [&] { done[0] = sim.now(); });
  net.start_flow({l}, 1000.0, [&] { done[1] = sim.now(); });
  sim.run();
  // Both at 500 B/s → both finish at 2 s.
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(Network, ShortFlowFinishesThenLongSpeedsUp) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0);
  double short_done = -1.0, long_done = -1.0;
  net.start_flow({l}, 500.0, [&] { short_done = sim.now(); });
  net.start_flow({l}, 1500.0, [&] { long_done = sim.now(); });
  sim.run();
  // Phase 1: both at 500 B/s. Short (500 B) done at t=1. Long has 1000 B
  // left, now alone at 1000 B/s → done at t=2.
  EXPECT_NEAR(short_done, 1.0, 1e-9);
  EXPECT_NEAR(long_done, 2.0, 1e-9);
}

TEST(Network, MaxMinFairnessAcrossTwoLinks) {
  // Flow A crosses links 1 and 2; flow B crosses link 1; flow C crosses
  // link 2. Link 1 cap 100, link 2 cap 200. Max-min: A and B bottleneck on
  // link 1 (50 each); C gets 200−50 = 150.
  Simulator sim;
  Network net(sim);
  const LinkId l1 = net.add_link(100.0);
  const LinkId l2 = net.add_link(200.0);
  FlowId a = net.start_flow({l1, l2}, 1e9, nullptr);
  FlowId b = net.start_flow({l1}, 1e9, nullptr);
  FlowId c = net.start_flow({l2}, 1e9, nullptr);
  // Rates are set synchronously on the last topology change.
  EXPECT_NEAR(net.flow_rate(a), 50.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(b), 50.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(c), 150.0, 1e-9);
}

TEST(Network, LossInflatesTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.25);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.25, 1e-9);  // (1+lr) wire inflation
}

TEST(Network, IncastCollapseShrinksAggregate) {
  // With alpha=0.1 and 8 flows, usable capacity is b / (1 + 0.1·7) = b/1.7.
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.0, 0.1);
  std::vector<double> done(8, -1.0);
  for (int f = 0; f < 8; ++f) {
    net.start_flow({l}, 125.0, [&done, f, &sim] { done[f] = sim.now(); });
  }
  sim.run();
  // 8×125 = 1000 B at 1000/1.7 B/s aggregate → 1.7 s.
  for (double d : done) EXPECT_NEAR(d, 1.7, 1e-9);
}

TEST(Network, SingleFlowUnaffectedByIncastAlpha) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.0, 0.5);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(Network, ExtraLatencyAddsToCompletion) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.1);
  double done_at = -1.0;
  net.start_flow({l}, 1000.0, [&] { done_at = sim.now(); }, 0.05);
  sim.run();
  EXPECT_NEAR(done_at, 1.15, 1e-9);
}

TEST(Network, BytesDeliveredCountsPayload) {
  Simulator sim;
  Network net(sim);
  const LinkId l = net.add_link(1000.0, 0.0, 0.5);  // heavy loss
  net.start_flow({l}, 300.0, nullptr);
  net.start_flow({l}, 700.0, nullptr);
  sim.run();
  EXPECT_NEAR(net.bytes_delivered(), 1000.0, 1e-9);  // payload, not wire
}

TEST(Network, IdealTransferTime) {
  Simulator sim;
  Network net(sim);
  const LinkId a = net.add_link(1000.0, 0.1, 0.0);
  const LinkId b = net.add_link(500.0, 0.2, 0.5);
  const double t = net.ideal_transfer_time({a, b}, 1000.0);
  // latency 0.3 + 1000·1.5 / min(1000,500) = 0.3 + 3.0.
  EXPECT_NEAR(t, 3.3, 1e-9);
}

TEST(Network, ManySequentialFlowsDeterministic) {
  auto run_once = [] {
    Simulator sim;
    Network net(sim);
    const LinkId l = net.add_link(100.0);
    double last = 0.0;
    for (int i = 0; i < 50; ++i) {
      net.start_flow({l}, 10.0 + i, [&last, &sim] { last = sim.now(); });
    }
    sim.run();
    return last;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Cluster, TopologyRoutes) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(sim, cfg);
  EXPECT_EQ(cluster.num_workers(), 4u);
  // 5 nodes (4 workers + PS), 2 links each.
  EXPECT_EQ(cluster.network().num_links(), 10u);
  const auto up = cluster.route_to_ps(2);
  const auto down = cluster.route_from_ps(2);
  ASSERT_EQ(up.size(), 2u);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_NE(up[0], down[1]);  // worker uplink != worker downlink
}

TEST(Cluster, SharedPsIngressCreatesIncast) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.link_gbps = 0.000008;  // 1000 B/s for easy math
  cfg.link_latency_s = 0.0;
  cfg.incast_alpha = 0.0;
  Cluster cluster(sim, cfg);
  std::vector<double> done(4, -1.0);
  for (std::size_t w = 0; w < 4; ++w) {
    cluster.network().start_flow(cluster.route_to_ps(w), 1000.0,
                                 [&done, w, &sim] { done[w] = sim.now(); });
  }
  sim.run();
  // All four flows share the PS downlink: 250 B/s each → 4 s.
  for (double d : done) EXPECT_NEAR(d, 4.0, 1e-6);
}

TEST(Cluster, ColocatedPsLoopback) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.colocated_ps = true;
  Cluster cluster(sim, cfg);
  EXPECT_TRUE(cluster.hosts_ps(0));
  EXPECT_FALSE(cluster.hosts_ps(1));
  EXPECT_TRUE(cluster.route_to_ps(0).empty());
  EXPECT_FALSE(cluster.route_to_ps(1).empty());
  // Only 3 nodes worth of links.
  EXPECT_EQ(cluster.network().num_links(), 6u);
}

TEST(Cluster, SpeedFactors) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.speed_factors = {1.0, 0.5};
  Cluster cluster(sim, cfg);
  EXPECT_DOUBLE_EQ(cluster.speed_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(cluster.speed_factor(1), 0.5);
}

TEST(Cluster, RejectsBadSpeedFactorArity) {
  Simulator sim;
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.speed_factors = {1.0, 1.0};
  EXPECT_THROW(Cluster(sim, cfg), util::CheckError);
}

TEST(ComputeModel, BaseTimeScalesWithBatchAndFlops) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  EXPECT_NEAR(model.base_batch_time(64), 64.0 * 1e9 / 5e11, 1e-15);
  EXPECT_NEAR(model.base_batch_time(128), 2 * model.base_batch_time(64),
              1e-15);
}

TEST(ComputeModel, SpeedFactorDividesTime) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  util::Rng rng(1);
  const double fast = model.batch_time(64, 2.0, rng);
  const double slow = model.batch_time(64, 0.5, rng);
  EXPECT_NEAR(slow / fast, 4.0, 1e-12);
}

TEST(ComputeModel, JitterIsOneSided) {
  ComputeModel model;
  model.flops_per_sample = 1e9;
  model.node.device_flops = 1e12;
  model.node.efficiency = 0.5;
  model.straggler_jitter = 0.2;
  util::Rng rng(2);
  const double base = model.base_batch_time(64);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = model.batch_time(64, 1.0, rng);
    EXPECT_GE(t, base);
    total += t / base - 1.0;
  }
  EXPECT_NEAR(total / 2000.0, 0.2, 0.02);  // exponential mean = jitter
}

TEST(GbpsConversion, TenGbpsIs1250MBps) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(10.0), 1.25e9);
}

}  // namespace
}  // namespace osp::sim
