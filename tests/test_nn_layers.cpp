// Gradient-correctness tests: every layer's backward() is verified against
// central finite differences of its forward(), for both input gradients and
// parameter gradients. A weighted-sum readout makes the scalar loss.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/sequential.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::nn {
namespace {

using tensor::Tensor;

/// Scalar readout L = Σ w_i · out_i with fixed random weights.
struct Readout {
  std::vector<float> w;

  explicit Readout(std::size_t n, util::Rng& rng) {
    w.resize(n);
    for (float& v : w) v = static_cast<float>(rng.normal());
  }

  [[nodiscard]] double value(const Tensor& out) const {
    double s = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i) s += w[i] * out[i];
    return s;
  }

  [[nodiscard]] Tensor grad(const tensor::Shape& shape) const {
    Tensor g(shape);
    for (std::size_t i = 0; i < g.numel(); ++i) g[i] = w[i];
    return g;
  }
};

/// Verifies input and parameter gradients of `layer` at `input`.
/// `spot_checks` bounds how many elements are probed per tensor.
void check_layer_gradients(Layer& layer, const Tensor& input,
                           std::size_t spot_checks = 24,
                           float eps = 1e-2f, float tol = 2e-2f) {
  util::Rng rng(99);
  Tensor out = layer.forward(input, true);
  Readout readout(out.numel(), rng);
  layer.zero_grad();
  // Re-run forward so caches match the probe points exactly.
  out = layer.forward(input, true);
  const Tensor gin = layer.backward(readout.grad(out.shape()));

  // Input gradient spot checks.
  Tensor probe = input;
  const std::size_t in_stride =
      std::max<std::size_t>(1, input.numel() / spot_checks);
  for (std::size_t i = 0; i < input.numel(); i += in_stride) {
    const float saved = probe[i];
    probe[i] = saved + eps;
    const double up = readout.value(layer.forward(probe, true));
    probe[i] = saved - eps;
    const double down = readout.value(layer.forward(probe, true));
    probe[i] = saved;
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(gin[i], fd, tol * std::max(1.0, std::abs(fd)))
        << layer.name() << " input grad at " << i;
  }

  // Parameter gradient spot checks. Recompute analytic grads first (the
  // probes above clobbered the caches).
  layer.zero_grad();
  (void)layer.forward(input, true);
  (void)layer.backward(readout.grad(out.shape()));
  for (ParamRef& p : layer.params()) {
    std::vector<float> analytic(p.grad->data().begin(),
                                p.grad->data().end());
    const std::size_t stride =
        std::max<std::size_t>(1, p.numel() / spot_checks);
    for (std::size_t i = 0; i < p.numel(); i += stride) {
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + eps;
      const double up = readout.value(layer.forward(input, true));
      (*p.value)[i] = saved - eps;
      const double down = readout.value(layer.forward(input, true));
      (*p.value)[i] = saved;
      const double fd = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], fd, tol * std::max(1.0, std::abs(fd)))
          << layer.name() << " param " << p.name << " grad at " << i;
    }
  }
}

Tensor random_input(tensor::Shape shape, util::Rng& rng,
                    double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.normal() * scale);
  return t;
}

TEST(LinearLayer, GradientsMatchFiniteDifference) {
  util::Rng rng(1);
  Linear layer("fc", 6, 4, rng);
  check_layer_gradients(layer, random_input({3, 6}, rng));
}

TEST(LinearLayer, NoBiasVariant) {
  util::Rng rng(2);
  Linear layer("fc", 5, 3, rng, /*bias=*/false);
  EXPECT_EQ(layer.params().size(), 1u);
  check_layer_gradients(layer, random_input({2, 5}, rng));
}

TEST(LinearLayer, ForwardMatchesManual) {
  util::Rng rng(3);
  Linear layer("fc", 2, 2, rng);
  auto params = layer.params();
  // W = [[1,2],[3,4]], b = [10, 20]
  (*params[0].value)[0] = 1.0f;
  (*params[0].value)[1] = 2.0f;
  (*params[0].value)[2] = 3.0f;
  (*params[0].value)[3] = 4.0f;
  (*params[1].value)[0] = 10.0f;
  (*params[1].value)[1] = 20.0f;
  Tensor x({1, 2});
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 1.0f;
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f);  // 3+4+20
}

TEST(ReluLayer, GradientsAwayFromKink) {
  util::Rng rng(4);
  ReLU layer("relu");
  // Shift inputs away from 0 so finite differences are valid.
  Tensor in = random_input({4, 5}, rng);
  for (float& v : in.data()) v += (v >= 0.0f ? 0.5f : -0.5f);
  check_layer_gradients(layer, in);
}

TEST(ReluLayer, ZeroesNegatives) {
  ReLU layer("relu");
  Tensor in = Tensor::from({-1.0f, 0.0f, 2.0f});
  in.reshape({1, 3});
  const Tensor out = layer.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(TanhLayer, Gradients) {
  util::Rng rng(5);
  Tanh layer("tanh");
  check_layer_gradients(layer, random_input({3, 4}, rng));
}

TEST(GeluLayer, Gradients) {
  util::Rng rng(6);
  Gelu layer("gelu");
  check_layer_gradients(layer, random_input({3, 4}, rng));
}

TEST(Conv2dLayer, GradientsMatchFiniteDifference) {
  util::Rng rng(7);
  Conv2d layer("conv", 2, 3, 5, 5, 3, 1, 1, rng);
  check_layer_gradients(layer, random_input({2, 2, 5, 5}, rng));
}

TEST(Conv2dLayer, StridedNoPad) {
  util::Rng rng(8);
  Conv2d layer("conv", 1, 2, 6, 6, 2, 2, 0, rng);
  check_layer_gradients(layer, random_input({1, 1, 6, 6}, rng));
}

TEST(Conv2dLayer, OutputShape) {
  util::Rng rng(9);
  Conv2d layer("conv", 3, 8, 8, 8, 3, 1, 1, rng);
  const Tensor out = layer.forward(random_input({4, 3, 8, 8}, rng), false);
  EXPECT_EQ(out.shape(), (tensor::Shape{4, 8, 8, 8}));
}

TEST(Conv2dLayer, ForwardMatchesDirectConvolution) {
  // The im2col+GEMM pipeline against a direct 7-loop convolution.
  util::Rng rng(91);
  const std::size_t B = 2, C = 3, H = 6, W = 5, OC = 4, K = 3;
  const std::size_t stride = 1, pad = 1;
  Conv2d layer("conv", C, OC, H, W, K, stride, pad, rng);
  const Tensor x = random_input({B, C, H, W}, rng);
  const Tensor out = layer.forward(x, false);

  auto params = layer.params();
  const Tensor& weight = *params[0].value;  // [OC, C*K*K]
  const Tensor& bias = *params[1].value;
  const std::size_t oh = (H + 2 * pad - K) / stride + 1;
  const std::size_t ow = (W + 2 * pad - K) / stride + 1;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t oc = 0; oc < OC; ++oc) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          double s = bias[oc];
          for (std::size_t c = 0; c < C; ++c) {
            for (std::size_t ky = 0; ky < K; ++ky) {
              for (std::size_t kx = 0; kx < K; ++kx) {
                const long long iy =
                    static_cast<long long>(oy * stride + ky) - pad;
                const long long ix =
                    static_cast<long long>(ox * stride + kx) - pad;
                if (iy < 0 || ix < 0 || iy >= static_cast<long long>(H) ||
                    ix >= static_cast<long long>(W)) {
                  continue;
                }
                s += static_cast<double>(
                         x.at(b, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix))) *
                     weight.at(oc, (c * K + ky) * K + kx);
              }
            }
          }
          EXPECT_NEAR(out.at(b, oc, oy, ox), s, 1e-4)
              << "b=" << b << " oc=" << oc << " oy=" << oy << " ox=" << ox;
        }
      }
    }
  }
}

TEST(Conv2dLayer, BatchedMatchesPerSampleBitwise) {
  // The batched scratch layout must change nothing: a batch-3 pass and
  // three batch-1 passes over the same layer produce byte-identical
  // outputs and accumulated gradients.
  util::Rng rng(92);
  const std::size_t B = 3, C = 2, H = 7, W = 7, OC = 5;
  const Tensor x = random_input({B, C, H, W}, rng);

  util::Rng wrng(93);
  Conv2d batched("conv", C, OC, H, W, 3, 1, 1, wrng);
  util::Rng wrng2(93);
  Conv2d single("conv", C, OC, H, W, 3, 1, 1, wrng2);

  const Tensor out = batched.forward(x, true);
  Tensor gout = random_input(out.shape(), rng);
  const Tensor dx = batched.backward(gout);

  const std::size_t img = C * H * W;
  const std::size_t oimg = out.numel() / B;
  Tensor outs(out.shape()), dxs(x.shape());
  for (std::size_t b = 0; b < B; ++b) {
    Tensor xb({1, C, H, W});
    std::memcpy(xb.raw(), x.raw() + b * img, img * sizeof(float));
    const Tensor ob = single.forward(xb, true);
    std::memcpy(outs.raw() + b * oimg, ob.raw(), oimg * sizeof(float));
    Tensor gb({1, OC, out.dim(2), out.dim(3)});
    std::memcpy(gb.raw(), gout.raw() + b * oimg, oimg * sizeof(float));
    const Tensor db = single.backward(gb);
    std::memcpy(dxs.raw() + b * img, db.raw(), img * sizeof(float));
  }
  EXPECT_EQ(std::memcmp(out.raw(), outs.raw(), out.numel() * sizeof(float)),
            0)
      << "forward diverged from per-sample";
  EXPECT_EQ(std::memcmp(dx.raw(), dxs.raw(), dx.numel() * sizeof(float)), 0)
      << "input gradient diverged from per-sample";
  auto pb = batched.params();
  auto ps = single.params();
  for (std::size_t i = 0; i < pb.size(); ++i) {
    EXPECT_EQ(std::memcmp(pb[i].grad->raw(), ps[i].grad->raw(),
                          pb[i].grad->numel() * sizeof(float)),
              0)
        << "gradient " << pb[i].name << " diverged from per-sample";
  }
}

TEST(MaxPoolLayer, ForwardPicksMax) {
  MaxPool2d layer("pool", 1, 2, 2, 2, 2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 0, 0) = 1.0f;
  in.at(0, 0, 0, 1) = 5.0f;
  in.at(0, 0, 1, 0) = 3.0f;
  in.at(0, 0, 1, 1) = 2.0f;
  const Tensor out = layer.forward(in, false);
  EXPECT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(MaxPoolLayer, BackwardRoutesToArgmax) {
  MaxPool2d layer("pool", 1, 2, 2, 2, 2);
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 0, 1) = 5.0f;
  (void)layer.forward(in, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 2.5f;
  const Tensor din = layer.backward(g);
  EXPECT_FLOAT_EQ(din.at(0, 0, 0, 1), 2.5f);
  EXPECT_FLOAT_EQ(din.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPoolLayer, GradientsViaFiniteDifference) {
  util::Rng rng(10);
  MaxPool2d layer("pool", 2, 4, 4, 2, 2);
  // Well-separated values avoid argmax flips under the probe epsilon.
  Tensor in({1, 2, 4, 4});
  for (std::size_t i = 0; i < in.numel(); ++i) {
    in[i] = static_cast<float>(i % 7) + 0.1f * static_cast<float>(rng.normal());
  }
  check_layer_gradients(layer, in, 16, 1e-3f);
}

TEST(FlattenLayer, RoundTripShapes) {
  Flatten layer("flat");
  util::Rng rng(11);
  const Tensor in = random_input({2, 3, 4, 4}, rng);
  const Tensor out = layer.forward(in, false);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 48}));
  const Tensor back = layer.backward(out);
  EXPECT_EQ(back.shape(), in.shape());
}

TEST(LayerNormLayer, NormalizesRows) {
  LayerNorm layer("ln", 8);
  util::Rng rng(12);
  const Tensor out = layer.forward(random_input({4, 8}, rng, 3.0), false);
  for (std::size_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (float v : out.row(r)) mean += v;
    mean /= 8.0;
    for (float v : out.row(r)) var += (v - mean) * (v - mean);
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormLayer, Gradients) {
  util::Rng rng(13);
  LayerNorm layer("ln", 6);
  check_layer_gradients(layer, random_input({3, 6}, rng), 24, 1e-2f, 4e-2f);
}

TEST(DropoutLayer, EvalIsIdentity) {
  Dropout layer("drop", 0.5f, util::Rng(3));
  util::Rng rng(14);
  const Tensor in = random_input({2, 10}, rng);
  const Tensor out = layer.forward(in, false);
  for (std::size_t i = 0; i < in.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i]);
  }
}

TEST(DropoutLayer, TrainDropsAndRescales) {
  Dropout layer("drop", 0.5f, util::Rng(3));
  Tensor in({1, 1000}, 1.0f);
  const Tensor out = layer.forward(in, true);
  std::size_t zeros = 0;
  for (float v : out.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scale 1/(1-0.5)
    }
  }
  EXPECT_GT(zeros, 400u);
  EXPECT_LT(zeros, 600u);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout layer("drop", 0.3f, util::Rng(5));
  Tensor in({1, 100}, 1.0f);
  const Tensor out = layer.forward(in, true);
  Tensor g({1, 100}, 1.0f);
  const Tensor din = layer.backward(g);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(din[i], out[i]);  // same mask, same scale on ones
  }
}

TEST(EmbeddingLayer, LooksUpRows) {
  util::Rng rng(15);
  Embedding layer("emb", 10, 4, rng);
  Tensor ids({2, 3});
  ids[0] = 1.0f;
  ids[1] = 2.0f;
  ids[2] = 1.0f;
  ids[3] = 0.0f;
  ids[4] = 9.0f;
  ids[5] = 9.0f;
  const Tensor out = layer.forward(ids, false);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 3, 4}));
  // Same id → same embedding.
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(out[0 * 4 + d], out[2 * 4 + d]);
    EXPECT_FLOAT_EQ(out[4 * 4 + d], out[5 * 4 + d]);
  }
}

TEST(EmbeddingLayer, RejectsOutOfVocab) {
  util::Rng rng(16);
  Embedding layer("emb", 4, 2, rng);
  Tensor ids({1, 1});
  ids[0] = 4.0f;
  EXPECT_THROW((void)layer.forward(ids, false), util::CheckError);
}

TEST(EmbeddingLayer, BackwardScatterAdds) {
  util::Rng rng(17);
  Embedding layer("emb", 5, 2, rng);
  Tensor ids({1, 2});
  ids[0] = 3.0f;
  ids[1] = 3.0f;  // same token twice: grads must accumulate
  (void)layer.forward(ids, true);
  Tensor g({1, 2, 2}, 1.0f);
  (void)layer.backward(g);
  auto params = layer.params();
  const Tensor& tg = *params[0].grad;
  EXPECT_FLOAT_EQ(tg[3 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(tg[3 * 2 + 1], 2.0f);
  EXPECT_FLOAT_EQ(tg[0], 0.0f);
}

TEST(SelfAttentionLayer, GradientsMatchFiniteDifference) {
  util::Rng rng(18);
  SelfAttention layer("attn", 4, rng);
  check_layer_gradients(layer, random_input({2, 3, 4}, rng), 20, 1e-2f,
                        4e-2f);
}

TEST(SelfAttentionLayer, PreservesShape) {
  util::Rng rng(19);
  SelfAttention layer("attn", 8, rng);
  const Tensor in = random_input({3, 5, 8}, rng);
  EXPECT_EQ(layer.forward(in, false).shape(), in.shape());
}

TEST(Sequential, ChainsAndEnumeratesParams) {
  util::Rng rng(20);
  Sequential m;
  m.emplace<Linear>("fc0", 4, 8, rng);
  m.emplace<ReLU>("relu");
  m.emplace<Linear>("fc1", 8, 2, rng);
  EXPECT_EQ(m.num_layers(), 3u);
  EXPECT_EQ(m.params().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(m.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
  const Tensor out = m.forward(random_input({5, 4}, rng), false);
  EXPECT_EQ(out.shape(), (tensor::Shape{5, 2}));
}

TEST(Sequential, ZeroGradClearsAll) {
  util::Rng rng(21);
  Sequential m;
  m.emplace<Linear>("fc0", 3, 3, rng);
  const Tensor in = random_input({2, 3}, rng);
  (void)m.forward(in, true);
  Tensor g({2, 3}, 1.0f);
  (void)m.backward(g);
  bool any_nonzero = false;
  for (ParamRef& p : m.params()) {
    for (float v : p.grad->data()) any_nonzero |= v != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (ParamRef& p : m.params()) {
    for (float v : p.grad->data()) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Sequential, WholeModelGradientCheck) {
  // End-to-end: MLP forward/backward against finite differences on the
  // flattened parameter vector.
  util::Rng rng(22);
  Sequential m;
  m.emplace<Linear>("fc0", 4, 6, rng);
  m.emplace<Tanh>("tanh");
  m.emplace<Linear>("fc1", 6, 3, rng);
  const Tensor in = random_input({3, 4}, rng);
  Readout readout(9, rng);

  m.zero_grad();
  Tensor out = m.forward(in, true);
  (void)m.backward(readout.grad(out.shape()));

  const float eps = 1e-2f;
  for (ParamRef& p : m.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p.numel() / 8);
    for (std::size_t i = 0; i < p.numel(); i += stride) {
      const float analytic = (*p.grad)[i];
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + eps;
      const double up = readout.value(m.forward(in, true));
      (*p.value)[i] = saved - eps;
      const double down = readout.value(m.forward(in, true));
      (*p.value)[i] = saved;
      const double fd = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic, fd, 2e-2 * std::max(1.0, std::abs(fd)))
          << p.name << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace osp::nn
