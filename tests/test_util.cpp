// Unit tests for the util module: RNG determinism and distribution sanity,
// online statistics, the thread pool, tables, and flat-vector kernels.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/small_function.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace osp::util {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(OSP_CHECK(false, "boom"), CheckError);
  try {
    OSP_CHECK(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(OSP_CHECK(true));
  EXPECT_NO_THROW(OSP_CHECK(2 + 2 == 4, "arithmetic"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentUse) {
  Rng a(7);
  Rng child1 = a.fork(3);
  (void)a.next_u64();
  Rng b(7);
  Rng child2 = b.fork(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a(7);
  Rng c0 = a.fork(0);
  Rng c1 = a.fork(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform_u64(0), CheckError);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), CheckError);
  EXPECT_THROW((void)rng.exponential(-1.0), CheckError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleDeterministic) {
  std::vector<int> a(20), b(20);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(9), r2(9);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  Rng rng(17);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Ema, FirstValuePassesThrough) {
  Ema ema(0.5);
  EXPECT_TRUE(ema.empty());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, Smooths) {
  Ema ema(0.5);
  ema.add(10.0);
  ema.add(0.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
  ema.add(5.0);
  EXPECT_DOUBLE_EQ(ema.value(), 5.0);
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(Ema(0.0), CheckError);
  EXPECT_THROW(Ema(1.5), CheckError);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, SingleElement) {
  std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.99), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  std::vector<double> xs;
  EXPECT_THROW((void)percentile(xs, 0.5), CheckError);
  std::vector<double> one = {1.0};
  EXPECT_THROW((void)percentile(one, 1.5), CheckError);
}

TEST(MeanStddev, Basics) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(
      hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);  // non-atomic: must run on one thread
  pool.parallel_for(
      10,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i] += 1;
      },
      1024);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForSkewedWorkCoversExactlyOnce) {
  // Dynamic chunk claiming must still visit every index exactly once when
  // per-index cost is wildly skewed (front-loaded work).
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<long long> sink{0};
  pool.parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          long long acc = 0;
          const std::size_t spin = i < 64 ? 20000 : 1;
          for (std::size_t s = 0; s < spin; ++s) acc += static_cast<long long>(s ^ i);
          sink.fetch_add(acc, std::memory_order_relaxed);
          hits[i].fetch_add(1);
        }
      },
      16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // An inner parallel_for issued from inside an outer chunk must not
  // deadlock: the inner caller can always drain its own chunks.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.parallel_for(
      64,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          pool.parallel_for(
              64,
              [&, i](std::size_t b2, std::size_t e2) {
                for (std::size_t j = b2; j < e2; ++j) {
                  hits[i * 64 + j].fetch_add(1);
                }
              },
              4);
        }
      },
      1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ScopedGlobalOverridesAndRestores) {
  ThreadPool& original = ThreadPool::global();
  {
    ThreadPool pool(2);
    ThreadPool::ScopedGlobal guard(pool);
    EXPECT_EQ(&ThreadPool::global(), &pool);
    {
      ThreadPool inner(5);
      ThreadPool::ScopedGlobal nested(inner);
      EXPECT_EQ(&ThreadPool::global(), &inner);
    }
    EXPECT_EQ(&ThreadPool::global(), &pool);
  }
  EXPECT_EQ(&ThreadPool::global(), &original);
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(VecMath, Axpy) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(VecMath, AxpySizeMismatchThrows) {
  std::vector<float> x = {1, 2};
  std::vector<float> y = {1};
  EXPECT_THROW(axpy(1.0f, x, y), CheckError);
}

TEST(VecMath, DotAndNorms) {
  std::vector<float> a = {3, 4};
  std::vector<float> b = {1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(l1_norm(a), 7.0);
}

TEST(VecMath, AbsProdSum) {
  std::vector<float> a = {1, -2, 3};
  std::vector<float> b = {-4, 5, 6};
  EXPECT_DOUBLE_EQ(abs_prod_sum(a, b), 4.0 + 10.0 + 18.0);
}

TEST(VecMath, LargeReductionsMatchSerialAndThreadCounts) {
  // Above ~1M elements the reductions switch to fixed-chunk parallel
  // partials; the result must be deterministic across pool sizes and
  // close to the straight serial sum.
  const std::size_t n = (1u << 20) + 1234;
  std::vector<float> a(n), b(n);
  Rng rng(31337);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    serial += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  double d1, d5;
  {
    ThreadPool pool(1);
    ThreadPool::ScopedGlobal guard(pool);
    d1 = dot(a, b);
  }
  {
    ThreadPool pool(5);
    ThreadPool::ScopedGlobal guard(pool);
    d5 = dot(a, b);
  }
  EXPECT_EQ(d1, d5);  // bit-deterministic across thread counts
  EXPECT_NEAR(d1, serial, 1e-6 * n);
  {
    ThreadPool pool(3);
    ThreadPool::ScopedGlobal guard(pool);
    EXPECT_GT(l2_norm(a), 0.0);
    EXPECT_GT(l1_norm(a), 0.0);
    EXPECT_GT(abs_prod_sum(a, b), 0.0);
  }
}

TEST(VecMath, CopyFillSubAdd) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b(3);
  copy(a, b);
  EXPECT_EQ(b, a);
  fill(b, 7.0f);
  EXPECT_FLOAT_EQ(b[1], 7.0f);
  std::vector<float> d(3);
  sub(a, a, d);
  EXPECT_FLOAT_EQ(d[2], 0.0f);
  add(a, a, d);
  EXPECT_FLOAT_EQ(d[2], 6.0f);
}

TEST(VecMath, ScaleInPlace) {
  std::vector<float> a = {1, -2};
  scale(a, -2.0f);
  EXPECT_FLOAT_EQ(a[0], -2.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
}

TEST(SmallFunction, InvokesInlineCapture) {
  int hits = 0;
  SmallFunction<void()> fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, DefaultConstructedIsEmpty) {
  SmallFunction<int(int)> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFunction, PassesArgumentsAndReturnsValues) {
  SmallFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallFunction, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  SmallFunction<void()> a = [&hits] { ++hits; };
  SmallFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFunction, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  SmallFunction<int()> fn = [p = std::move(p)] { return *p + 1; };
  SmallFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 42);
}

TEST(SmallFunction, DestroysCaptureExactlyOnce) {
  // Counts destructions of a live (non-moved-from) capture through
  // construct, two moves, and destruction — exactly one net destroy.
  static int live = 0;
  struct Probe {
    bool owner = true;
    Probe() { ++live; }
    Probe(Probe&& o) noexcept : owner(o.owner) { o.owner = false; }
    Probe(const Probe& o) : owner(o.owner) {}
    ~Probe() {
      if (owner) --live;
    }
  };
  live = 0;
  {
    SmallFunction<void()> a = [probe = Probe{}] { (void)probe; };
    EXPECT_EQ(live, 1);
    SmallFunction<void()> b = std::move(a);
    SmallFunction<void()> c;
    c = std::move(b);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(SmallFunction, LargeCapturesSpillToHeap) {
  // A capture bigger than the inline buffer still works (heap path) and
  // survives moves.
  std::array<double, 32> big{};
  big[0] = 1.5;
  big[31] = 2.5;
  SmallFunction<double(), 16> fn = [big] { return big[0] + big[31]; };
  SmallFunction<double(), 16> moved = std::move(fn);
  EXPECT_DOUBLE_EQ(moved(), 4.0);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      parallel_map(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, RunsEveryJobExactlyOnce) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  const auto out = parallel_map(pool, 57, [&calls](std::size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(i);
  });
  EXPECT_EQ(calls.load(), 57);
  EXPECT_EQ(out.size(), 57u);
}

TEST(ParallelMap, EmptyAndSingle) {
  ThreadPool pool(2);
  EXPECT_TRUE(parallel_map(pool, 0, [](std::size_t) { return 1; }).empty());
  const auto one = parallel_map(pool, 1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(ParallelMap, GlobalPoolOverload) {
  const auto out = parallel_map(16, [](std::size_t i) { return 2 * i; });
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(out[15], 30u);
}

TEST(ThreadPoolTasks, SubmitTaskRunsAndJoinIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskHandle h = pool.submit_task([&ran] { ran.fetch_add(1); });
  ASSERT_TRUE(h.valid());
  h.join();
  EXPECT_TRUE(h.ready());
  EXPECT_EQ(ran.load(), 1);
  h.join();  // joining a finished task is a no-op
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTasks, DefaultHandleIsEmpty) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.ready());
  h.join();  // no-op, must not block or crash
}

TEST(ThreadPoolTasks, JoinStealsQueuedTask) {
  // Occupy the only worker, then join a task that is still queued: the
  // joining (main) thread must claim and run it inline instead of waiting
  // for the queue to drain.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::thread::id ran_on{};
  TaskHandle h =
      pool.submit_task([&ran_on] { ran_on = std::this_thread::get_id(); });
  h.join();  // worker is blocked — this must steal
  EXPECT_TRUE(h.ready());
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  release.store(true);
  pool.wait_idle();
}

TEST(ThreadPoolTasks, TasksInFlightCountsSubmittedUntilDone) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_in_flight(), 0u);
  std::atomic<bool> release{false};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(pool.submit_task([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  EXPECT_EQ(pool.tasks_in_flight(), 4u);
  release.store(true);
  for (TaskHandle& h : handles) h.join();
  EXPECT_EQ(pool.tasks_in_flight(), 0u);
}

TEST(ThreadPoolTasks, InTaskFlagTracksTrackedExecution) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::in_task());
  bool inside = false;
  TaskHandle h =
      pool.submit_task([&inside] { inside = ThreadPool::in_task(); });
  h.join();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(ThreadPool::in_task());  // restored after a stolen join too
}

TEST(ThreadPoolTasks, SaturatedTasksRunParallelForInline) {
  // With at least as many tracked tasks in flight as pool workers, a
  // parallel_for issued from inside a tracked task must run inline (one
  // fn(0, n) call on the calling thread): outer task-level parallelism
  // already owns every core. Two spinning blocker tasks pin
  // tasks_in_flight() >= size() for the whole probe, and the probe task is
  // joined while queued, so the main thread steals and runs it as a
  // tracked task deterministically.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::vector<TaskHandle> blockers;
  for (int t = 0; t < 2; ++t) {
    blockers.push_back(pool.submit_task([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  std::atomic<int> calls{0};
  std::atomic<bool> one_chunk_full_range{false};
  std::atomic<bool> on_caller_thread{false};
  TaskHandle probe = pool.submit_task([&] {
    const std::thread::id self = std::this_thread::get_id();
    pool.parallel_for(
        8192,
        [&](std::size_t b, std::size_t e) {
          calls.fetch_add(1);
          one_chunk_full_range.store(b == 0 && e == 8192);
          on_caller_thread.store(std::this_thread::get_id() == self);
        },
        1);
  });
  probe.join();  // stolen: runs inline on this thread, under saturation
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(one_chunk_full_range.load());
  EXPECT_TRUE(on_caller_thread.load());
  release.store(true);
  for (TaskHandle& h : blockers) h.join();
}

TEST(ThreadPoolTasks, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(pool.submit_task([&count] { count.fetch_add(1); }));
  }
  for (TaskHandle& h : handles) h.join();
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(pool.tasks_in_flight(), 0u);
}

}  // namespace
}  // namespace osp::util
