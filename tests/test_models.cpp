// Workload-zoo tests: every paper workload must have coherent metadata,
// buildable deterministic proxies with balanced layer blocks (the property
// the GIB's packing relies on), and working datasets.
#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "nn/registry.hpp"

namespace osp::models {
namespace {

class PaperWorkloads
    : public ::testing::TestWithParam<runtime::WorkloadSpec> {};

TEST_P(PaperWorkloads, MetadataCoherent) {
  const runtime::WorkloadSpec& spec = GetParam();
  EXPECT_FALSE(spec.name.empty());
  EXPECT_GT(spec.real_param_bytes, 1e6);
  EXPECT_GT(spec.flops_per_sample, 1e9);
  EXPECT_GT(spec.batch_size, 0u);
  EXPECT_GT(spec.gib_overhead_fraction, 0.0);
  EXPECT_LT(spec.gib_overhead_fraction, 0.2);
  EXPECT_GT(spec.target_metric, 0.0);
  EXPECT_LE(spec.target_metric, 1.0);
  ASSERT_NE(spec.train, nullptr);
  ASSERT_NE(spec.eval, nullptr);
  EXPECT_GT(spec.train->size(), spec.eval->size());
}

TEST_P(PaperWorkloads, ModelBuildsDeterministically) {
  const runtime::WorkloadSpec& spec = GetParam();
  nn::Sequential a = spec.build_model(7);
  nn::Sequential b = spec.build_model(7);
  nn::FlatModel fa(a), fb(b);
  ASSERT_EQ(fa.total_params(), fb.total_params());
  std::vector<float> pa(fa.total_params()), pb(fb.total_params());
  fa.gather_params(pa);
  fb.gather_params(pb);
  EXPECT_EQ(pa, pb);
}

TEST_P(PaperWorkloads, DifferentSeedsDifferentInit) {
  const runtime::WorkloadSpec& spec = GetParam();
  nn::Sequential a = spec.build_model(1);
  nn::Sequential b = spec.build_model(2);
  nn::FlatModel fa(a), fb(b);
  std::vector<float> pa(fa.total_params()), pb(fb.total_params());
  fa.gather_params(pa);
  fb.gather_params(pb);
  EXPECT_NE(pa, pb);
}

TEST_P(PaperWorkloads, BlocksAreBalanced) {
  // No layer block may dominate the model: the GIB can only pack the ICS
  // budget if blocks are reasonably granular (DESIGN.md).
  const runtime::WorkloadSpec& spec = GetParam();
  nn::Sequential model = spec.build_model(3);
  nn::FlatModel flat(model);
  EXPECT_GE(flat.num_blocks(), 6u);
  const auto total = static_cast<double>(flat.total_params());
  for (std::size_t i = 0; i < flat.num_blocks(); ++i) {
    EXPECT_LT(static_cast<double>(flat.block(i).numel) / total, 0.35)
        << "block " << flat.block(i).name << " dominates the model";
  }
}

TEST_P(PaperWorkloads, ModelConsumesItsDataset) {
  const runtime::WorkloadSpec& spec = GetParam();
  nn::Sequential model = spec.build_model(5);
  std::vector<std::size_t> idx = {0, 1, 2, 3};
  const data::Batch batch = spec.train->make_batch(idx);
  const tensor::Tensor out = model.forward(batch.inputs, false);
  EXPECT_EQ(out.dim(0), 4u);
  if (spec.is_qa) {
    EXPECT_EQ(batch.starts.size(), 4u);
    EXPECT_EQ(out.dim(1) % 2, 0u);
  } else {
    EXPECT_EQ(batch.labels.size(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PaperWorkloads, ::testing::ValuesIn(paper_workloads()),
    [](const ::testing::TestParamInfo<runtime::WorkloadSpec>& info) {
      std::string name = info.param.model_name;
      return name;
    });

TEST(Zoo, FiveWorkloadsInPaperOrder) {
  const auto all = paper_workloads();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].model_name, "ResNet50");
  EXPECT_EQ(all[1].model_name, "VGG16");
  EXPECT_EQ(all[2].model_name, "InceptionV3");
  EXPECT_EQ(all[3].model_name, "ResNet101");
  EXPECT_EQ(all[4].model_name, "BERTbase");
  EXPECT_TRUE(all[4].is_qa);
  EXPECT_EQ(all[4].batch_size, 12u);  // §5.1.3: SQuAD batch size
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i].batch_size, 64u);  // §5.1.3: image batch size
    EXPECT_FALSE(all[i].is_qa);
  }
}

TEST(Zoo, VggIsTheLargestImageModel) {
  // VGG16's 138 M parameters make it the most communication-bound — the
  // property the throughput experiments hinge on.
  const auto all = paper_workloads();
  for (const auto& spec : all) {
    if (spec.model_name != "VGG16") {
      EXPECT_LT(spec.real_param_bytes, vgg16_cifar10().real_param_bytes);
    }
  }
}

TEST(Zoo, TinyMlpIsFast) {
  const auto spec = tiny_mlp();
  nn::Sequential model = spec.build_model(1);
  nn::FlatModel flat(model);
  EXPECT_LT(flat.total_params(), 10000u);  // must stay unit-test cheap
  EXPECT_GE(flat.num_blocks(), 3u);
}

}  // namespace
}  // namespace osp::models
