// Chaos suite for the deterministic fault-injection layer: seeded replay,
// crash/restart survival of the real sync models through the real Engine,
// link flaps during ICS, RS deadlines, and the golden regression that pins
// the healthy path (empty FaultSchedule) to the pre-fault-layer
// trajectories.
#include <gtest/gtest.h>

#include <cmath>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sim/cluster.hpp"
#include "sim/faults.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "util/check.hpp"

namespace osp {
namespace {

runtime::EngineConfig golden_config() {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  return cfg;
}

runtime::RunResult run_with(runtime::SyncModel& sync,
                            const runtime::EngineConfig& cfg) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  runtime::Engine engine(spec, cfg, sync);
  return engine.run();
}

/// Resolve the deterministic link ids of the engine's cluster by building
/// an identically-configured throwaway cluster.
struct LinkIds {
  sim::LinkId worker_up0, worker_up1, ps_down;
  explicit LinkIds(runtime::EngineConfig cfg) {
    sim::Simulator s;
    cfg.cluster.num_workers = cfg.num_workers;
    sim::Cluster c(s, cfg.cluster);
    worker_up0 = c.worker_uplink(0);
    worker_up1 = c.worker_uplink(1);
    ps_down = c.ps_downlink();
  }
};

// ---- schedule validation ----

TEST(FaultSchedule, ValidatesEagerly) {
  sim::FaultSchedule s;
  EXPECT_THROW(s.pause_worker(-1.0, 0, 1.0), util::CheckError);
  EXPECT_THROW(s.pause_worker(0.0, 0, 0.0), util::CheckError);
  EXPECT_THROW(s.link_down(0.0, 0, -0.5), util::CheckError);
  EXPECT_THROW(s.degrade_link(0.0, 0, 1.0, 0.0), util::CheckError);
  EXPECT_THROW(s.degrade_link(0.0, 0, 1.0, 1.5), util::CheckError);
  EXPECT_THROW(s.drop_messages(0.0, 1.0, 1.5), util::CheckError);
  EXPECT_THROW(s.delay_messages(0.0, 1.0, -0.1), util::CheckError);
  EXPECT_TRUE(s.empty());
  s.crash_worker(1.0, 2).pause_worker(0.5, 1, 0.25);
  EXPECT_EQ(s.events().size(), 2u);
}

TEST(FaultSchedule, OutOfRangeTargetsRejectedAtInstall) {
  runtime::EngineConfig cfg = golden_config();
  cfg.faults.crash_worker(0.5, /*worker=*/99);
  sync::BspSync sync;
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  runtime::Engine engine(spec, cfg, sync);
  EXPECT_THROW((void)engine.run(), util::CheckError);
}

// ---- golden regression: the empty schedule is the pre-change healthy
// path, bit-for-bit in event order and arithmetic. Times are pure virtual
// arithmetic (tight tolerance); losses cross libm so they get slack. ----

TEST(GoldenRegression, BspUnchangedByFaultLayer) {
  sync::BspSync sync;
  const runtime::RunResult r = run_with(sync, golden_config());
  EXPECT_FALSE(r.faults.any());
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_NEAR(r.total_time_s, 1.521459172686775, 1.6e-9);
  EXPECT_NEAR(r.mean_bst_s, 0.048871746867496256, 5e-11);
  EXPECT_NEAR(r.mean_bct_s, 0.014522385327786033, 2e-11);
  EXPECT_NEAR(r.final_loss, 0.024709313136008729, 1e-4);
  EXPECT_GE(r.best_metric, 0.99);
}

TEST(GoldenRegression, AspUnchangedByFaultLayer) {
  sync::AspSync sync;
  const runtime::RunResult r = run_with(sync, golden_config());
  EXPECT_FALSE(r.faults.any());
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_NEAR(r.total_time_s, 1.0732457235323365, 1.1e-9);
  EXPECT_NEAR(r.mean_bst_s, 0.029502788591324276, 3e-11);
  EXPECT_NEAR(r.final_loss, 0.024488017046545803, 1e-4);
}

TEST(GoldenRegression, OspUnchangedByFaultLayer) {
  core::OspSync sync;
  const runtime::RunResult r = run_with(sync, golden_config());
  EXPECT_FALSE(r.faults.any());
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  // Times moved (once) when KvMessage::wire_bytes() started charging the
  // fixed serialization frame per push/response.
  EXPECT_NEAR(r.total_time_s, 1.466892955123156, 1.5e-9);
  EXPECT_NEAR(r.mean_bst_s, 0.046476451769293083, 5e-11);
  EXPECT_NEAR(r.final_loss, 0.024694773532894381, 1e-4);
}

// ---- determinism: same schedule + same seed ⇒ identical runs ----

TEST(FaultReplay, SeededChaosIsBitDeterministic) {
  auto chaotic_run = [] {
    runtime::EngineConfig cfg = golden_config();
    const LinkIds ids(cfg);
    cfg.faults.set_seed(99)
        .crash_worker(0.3, 2, /*restart_after=*/0.25)
        .pause_worker(0.15, 1, 0.1)
        .link_down(0.5, ids.ps_down, 0.08)
        .degrade_link(0.7, ids.worker_up0, 0.2, 0.4, 0.1)
        .drop_messages(0.9, 0.2, 0.5)
        .delay_messages(1.1, 0.1, 0.01);
    core::OspSync sync({}, {.rs_timeout_s = 0.3, .ics_timeout_s = 0.3});
    return run_with(sync, cfg);
  };
  const runtime::RunResult a = chaotic_run();
  const runtime::RunResult b = chaotic_run();
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.total_samples, b.total_samples);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_DOUBLE_EQ(a.mean_bst_s, b.mean_bst_s);
  EXPECT_EQ(a.faults.worker_crashes, b.faults.worker_crashes);
  EXPECT_EQ(a.faults.worker_restarts, b.faults.worker_restarts);
  EXPECT_EQ(a.faults.messages_dropped, b.faults.messages_dropped);
  EXPECT_EQ(a.faults.messages_delayed, b.faults.messages_delayed);
  EXPECT_EQ(a.faults.flows_cancelled, b.faults.flows_cancelled);
  EXPECT_EQ(a.faults.ps_crashes, b.faults.ps_crashes);
  EXPECT_EQ(a.faults.ps_restarts, b.faults.ps_restarts);
  EXPECT_EQ(a.faults.ps_promotions, b.faults.ps_promotions);
  EXPECT_EQ(a.faults.replica_catchup_bytes, b.faults.replica_catchup_bytes);
  EXPECT_EQ(a.faults.timed_out_rounds, b.faults.timed_out_rounds);
  EXPECT_EQ(a.faults.catch_up_pulls, b.faults.catch_up_pulls);
  EXPECT_DOUBLE_EQ(a.faults.worker_downtime_s, b.faults.worker_downtime_s);
  EXPECT_TRUE(a.faults.any());
}

// ---- crash survival (no timeouts configured: the crash notification
// alone must keep the barrier satisfiable) ----

TEST(CrashSurvival, BspPermanentCrashMidRsNoDeadlock) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;  // backstop: a deadlock trips the assert
  cfg.faults.crash_worker(0.4, 2);
  sync::BspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.worker_crashes, 1u);
  EXPECT_EQ(r.faults.worker_restarts, 0u);
  EXPECT_GT(r.faults.worker_downtime_s, 0.0);
  // The three survivors finish all their epochs.
  EXPECT_GT(r.total_samples, 3 * 128.0 * 3 - 1.0);
  EXPECT_LT(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(CrashSurvival, OspPermanentCrashMidTrainingCompletes) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  cfg.faults.crash_worker(0.5, 1);
  // Fixed ICS budget so the crash lands with ICS rounds in flight.
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;
  core::OspSync sync(opt);
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_TRUE(r.faults.any());
  EXPECT_EQ(r.faults.worker_crashes, 1u);
  EXPECT_GT(r.faults.worker_downtime_s, 0.0);
  EXPECT_GT(r.total_samples, 0.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
  // §4.3 fault degradation: with a worker down the GIB collapses to
  // all-important (RS-only) and stays there.
  EXPECT_EQ(sync.num_unhealthy(), 1u);
  EXPECT_EQ(sync.current_gib().count_unimportant(), 0u);
}

TEST(CrashSurvival, CrashedWorkerRestartsAndRejoins) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  cfg.faults.crash_worker(0.3, 0, /*restart_after=*/0.2);
  sync::BspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0);
  EXPECT_EQ(r.faults.worker_crashes, 1u);
  EXPECT_EQ(r.faults.worker_restarts, 1u);
  EXPECT_GE(r.faults.worker_downtime_s, 0.2);
  // The restarted worker finishes its epochs too; the iteration that was
  // in flight at the crash is recomputed, so up to one extra batch of
  // samples may be counted.
  EXPECT_GE(r.total_samples, 1536.0);
  EXPECT_LE(r.total_samples, 1536.0 + 32.0);
}

TEST(CrashSurvival, OspCrashRestartResumesIcs) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  cfg.faults.crash_worker(0.4, 3, /*restart_after=*/0.15);
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;
  core::OspSync sync(opt, {.rs_timeout_s = 0.5, .ics_timeout_s = 0.5});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0);
  EXPECT_EQ(r.faults.worker_restarts, 1u);
  EXPECT_EQ(sync.num_unhealthy(), 0u);
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  // After recovery the budget applies again: ICS rounds keep completing.
  EXPECT_GT(sync.ics_rounds_completed(), 0u);
}

// ---- link faults during ICS ----

TEST(LinkFaults, FlapDuringIcsConverges) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  const LinkIds ids(cfg);
  cfg.faults.link_down(0.3, ids.ps_down, 0.1)
      .link_down(0.6, ids.worker_up1, 0.1)
      .degrade_link(0.9, ids.ps_down, 0.3, 0.25);
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;
  core::OspSync sync(opt, {.rs_timeout_s = 0.5, .ics_timeout_s = 0.5});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.link_down_events, 2u);
  EXPECT_EQ(r.faults.link_degrade_events, 1u);
  // Nobody crashed: every worker finishes every epoch.
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GT(sync.ics_rounds_completed(), 0u);
}

// ---- deadlines ----

TEST(Timeouts, RsDeadlineClosesRoundWithSubset) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_epochs = 1;
  cfg.max_virtual_time_s = 120.0;
  cfg.cluster.speed_factors = {1.0, 1.0, 1.0, 0.05};  // one hard straggler
  sync::BspSync sync({.rs_timeout_s = 0.1, .ics_timeout_s = 0.0});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 119.0);
  // The fast three proceed on the deadline instead of waiting ~20× compute.
  EXPECT_GT(r.faults.timed_out_rounds, 0u);
  EXPECT_GT(r.faults.catch_up_pulls, 0u);
  EXPECT_DOUBLE_EQ(r.total_samples, 512.0);  // everyone still finishes
}

TEST(Timeouts, MessageDropsSurvivedViaDeadlines) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_epochs = 2;
  cfg.max_virtual_time_s = 120.0;
  cfg.faults.set_seed(1234).drop_messages(0.05, 0.4, /*drop_prob=*/0.6);
  sync::BspSync sync({.rs_timeout_s = 0.15, .ics_timeout_s = 0.0});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 119.0) << "run did not converge (deadlock?)";
  EXPECT_GT(r.faults.messages_dropped, 0u);
  EXPECT_DOUBLE_EQ(r.total_samples, 1024.0);
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

// ---- checkpoint-based crash recovery ----
// With CheckpointPolicy::restore_crashed_from_checkpoint a restarted
// worker reloads its replica from the latest run checkpoint (a local disk
// read) instead of pulling the full model from the PS over the network.

TEST(CheckpointRecovery, CrashRestoresFromCheckpointDeterministically) {
  auto recovery_run = [](bool restore_from_checkpoint) {
    runtime::EngineConfig cfg = golden_config();
    cfg.max_virtual_time_s = 60.0;
    cfg.checkpoint.every_iters = 4;  // snapshots at iters 4, 8, 12, 16, 20
    cfg.checkpoint.restore_crashed_from_checkpoint = restore_from_checkpoint;
    // Crash lands mid-run; the worker restores from the latest snapshot
    // instead of pulling the model over the network.
    cfg.faults.crash_worker(0.9, 2, /*restart_after=*/0.1);
    sync::BspSync sync;
    return run_with(sync, cfg);
  };

  const runtime::RunResult restore = recovery_run(true);
  EXPECT_EQ(restore.faults.worker_crashes, 1u);
  EXPECT_EQ(restore.faults.worker_restarts, 1u);
  EXPECT_EQ(restore.faults.checkpoint_restores, 1u);
  // Three snapshots land before the crash; afterwards the restored worker
  // trails the pack, so one boundary deadlocks (the straggler's round needs
  // the parked workers) and is skipped, leaving one more post-crash.
  EXPECT_EQ(restore.checkpoints_taken, 4u);
  // No lost rounds: every worker finishes every epoch (the iteration in
  // flight at the crash is recomputed, so up to one extra batch counts),
  // and no barrier round had to be closed by a deadline.
  EXPECT_GE(restore.total_samples, 1536.0);
  EXPECT_LE(restore.total_samples, 1536.0 + 32.0);
  EXPECT_EQ(restore.faults.timed_out_rounds, 0u);
  EXPECT_TRUE(std::isfinite(restore.final_loss));

  // Deterministic replay: the recovery path is seeded simulation like
  // everything else — a second run is bit-identical.
  const runtime::RunResult again = recovery_run(true);
  EXPECT_DOUBLE_EQ(restore.total_time_s, again.total_time_s);
  EXPECT_DOUBLE_EQ(restore.total_samples, again.total_samples);
  EXPECT_DOUBLE_EQ(restore.final_loss, again.final_loss);
  EXPECT_DOUBLE_EQ(restore.faults.worker_downtime_s,
                   again.faults.worker_downtime_s);
  EXPECT_EQ(restore.faults.checkpoint_restores,
            again.faults.checkpoint_restores);

  // The catch-up-pull path is untouched when the policy is off.
  const runtime::RunResult pull = recovery_run(false);
  EXPECT_EQ(pull.faults.worker_restarts, 1u);
  EXPECT_EQ(pull.faults.checkpoint_restores, 0u);
  EXPECT_GE(pull.total_samples, 1536.0);
}

TEST(CheckpointRecovery, FallsBackToPullBeforeFirstCheckpoint) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  cfg.checkpoint.every_iters = 8;  // first snapshot long after the crash
  cfg.checkpoint.restore_crashed_from_checkpoint = true;
  cfg.faults.crash_worker(0.2, 1, /*restart_after=*/0.1);
  sync::BspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_EQ(r.faults.worker_restarts, 1u);
  EXPECT_EQ(r.faults.checkpoint_restores, 0u);  // nothing to restore yet
  EXPECT_GE(r.total_samples, 1536.0);
}

TEST(CheckpointRecovery, OspCrashRestoreCompletesIcs) {
  runtime::EngineConfig cfg = golden_config();
  cfg.max_virtual_time_s = 60.0;
  cfg.checkpoint.every_iters = 4;
  cfg.checkpoint.restore_crashed_from_checkpoint = true;
  cfg.faults.crash_worker(0.9, 3, /*restart_after=*/0.15);
  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;
  core::OspSync sync(opt, {.rs_timeout_s = 0.5, .ics_timeout_s = 0.5});
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_LT(r.total_time_s, 59.0) << "run did not converge (deadlock?)";
  EXPECT_EQ(r.faults.worker_restarts, 1u);
  EXPECT_EQ(r.faults.checkpoint_restores, 1u);
  EXPECT_EQ(sync.num_unhealthy(), 0u);
  EXPECT_GT(sync.ics_rounds_completed(), 0u);
  EXPECT_GE(r.total_samples, 1536.0);
  EXPECT_LE(r.total_samples, 1536.0 + 32.0);
}

// ---- pauses ----

TEST(Pauses, PauseStretchesRoundButLosesNothing) {
  runtime::EngineConfig cfg = golden_config();
  cfg.faults.pause_worker(0.2, 0, 0.4);
  sync::BspSync sync;
  const runtime::RunResult r = run_with(sync, cfg);
  EXPECT_EQ(r.faults.worker_pauses, 1u);
  EXPECT_NEAR(r.faults.worker_downtime_s, 0.4, 1e-12);
  // BSP: everybody waits for the paused worker, so the run stretches by
  // roughly the pause length relative to the golden 1.5215 s.
  EXPECT_GT(r.total_time_s, 1.8);
  EXPECT_DOUBLE_EQ(r.total_samples, 1536.0);
}

}  // namespace
}  // namespace osp
