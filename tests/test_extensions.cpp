// Tests for the extension systems: Sync-Switch, int8 quantization,
// error-feedback compression, multi-PS sharding, and sharded BSP/OSP.
#include <gtest/gtest.h>

#include <cmath>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "sync/compression.hpp"
#include "kv/partition.hpp"
#include "sync/sharded_bsp.hpp"
#include "sync/sync_switch.hpp"
#include "util/check.hpp"

namespace osp {
namespace {

runtime::EngineConfig ext_config(std::size_t workers = 4,
                                 std::size_t epochs = 4) {
  runtime::EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 23;
  cfg.straggler_jitter = 0.05;
  return cfg;
}

// ------------------------------------------------------------ Sync-Switch

TEST(SyncSwitch, SwitchesAtConfiguredEpoch) {
  const auto spec = models::tiny_mlp();
  sync::SyncSwitchSync sync(0.5);
  runtime::Engine engine(spec, ext_config(2, 4), sync);
  EXPECT_FALSE(sync.switched());
  (void)engine.run();
  EXPECT_TRUE(sync.switched());
}

TEST(SyncSwitch, ZeroFractionIsAspFromStart) {
  const auto spec = models::tiny_mlp();
  sync::SyncSwitchSync sync(0.0);
  runtime::Engine engine(spec, ext_config(2, 2), sync);
  (void)engine.run();
  EXPECT_TRUE(sync.switched());
}

TEST(SyncSwitch, FullFractionStaysBsp) {
  const auto spec = models::tiny_mlp();
  sync::SyncSwitchSync sync(1.0);
  runtime::Engine engine(spec, ext_config(2, 2), sync);
  const auto r = engine.run();
  // Never switches mid-run (switch epoch == max_epochs reached at the end).
  EXPECT_DOUBLE_EQ(r.total_samples, 2.0 * 2.0 * 16.0 * 16.0);
}

TEST(SyncSwitch, ThroughputBetweenBspAndAsp) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = ext_config(8, 6);
  sync::BspSync bsp;
  sync::SyncSwitchSync hybrid(0.5);
  runtime::Engine e1(spec, cfg, bsp);
  const double tb = e1.run().throughput;
  runtime::Engine e2(spec, cfg, hybrid);
  const double th = e2.run().throughput;
  EXPECT_GT(th, tb);  // second half runs ASP
}

TEST(SyncSwitch, TrainsToCompletion) {
  const auto spec = models::tiny_mlp();
  sync::SyncSwitchSync sync(0.3);
  runtime::Engine engine(spec, ext_config(3, 6), sync);
  const auto r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
  EXPECT_DOUBLE_EQ(r.total_samples, 3.0 * 6.0 * 10.0 * 16.0);
}

TEST(SyncSwitch, RejectsBadFraction) {
  EXPECT_THROW(sync::SyncSwitchSync(-0.1), util::CheckError);
  EXPECT_THROW(sync::SyncSwitchSync(1.5), util::CheckError);
}

// ----------------------------------------------------------- quantization

TEST(Quantization, RoundTripBoundedError) {
  std::vector<float> g = {0.5f, -1.0f, 0.25f, 0.8f};
  std::vector<float> original = g;
  const float scale = sync::quantize_dequantize_int8(g);
  EXPECT_GT(scale, 0.0f);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g[i], original[i], scale / 2.0f + 1e-7f);
  }
}

TEST(Quantization, ZeroVectorUnchanged) {
  std::vector<float> g(8, 0.0f);
  EXPECT_FLOAT_EQ(sync::quantize_dequantize_int8(g), 0.0f);
  for (float v : g) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Quantization, MaxValueExactlyRepresentable) {
  std::vector<float> g = {2.54f, -1.0f};
  sync::quantize_dequantize_int8(g);
  EXPECT_NEAR(g[0], 2.54f, 1e-6f);  // max maps to ±127 exactly
}

TEST(Quantization, Q8BspReducesBstKeepsAccuracy) {
  const auto spec = models::resnet50_cifar10();
  const auto cfg = ext_config(8, 8);
  sync::BspSync bsp;
  sync::QuantizedBspSync q8;
  runtime::Engine e1(spec, cfg, bsp);
  const auto rb = e1.run();
  runtime::Engine e2(spec, cfg, q8);
  const auto rq = e2.run();
  EXPECT_LT(rq.mean_bst_s, rb.mean_bst_s);          // 4× fewer wire bytes
  EXPECT_GT(rq.best_metric, rb.best_metric - 0.05); // bounded noise
}

// -------------------------------------------------------- error feedback

TEST(ErrorFeedback, RecoversTopKAccuracy) {
  // Plain TopK at an aggressive ratio loses accuracy; with residual memory
  // the dropped mass eventually ships and accuracy recovers.
  const auto spec = models::resnet50_cifar10();
  const auto cfg = ext_config(8, 10);
  sync::CompressedBspSync plain(sync::CompressionMode::TopK, 0.05);
  sync::CompressedBspSync ef(sync::CompressionMode::TopK, 0.05, 99, true);
  runtime::Engine e1(spec, cfg, plain);
  const auto rp = e1.run();
  runtime::Engine e2(spec, cfg, ef);
  const auto re = e2.run();
  EXPECT_GT(re.best_metric, rp.best_metric);
  EXPECT_EQ(ef.name(), "TopK(5%)+EF");
}

// --------------------------------------------------------------- sharding

TEST(Sharding, SingleShardIsAllZero) {
  std::vector<double> bytes = {10, 20, 30};
  const auto part = kv::byte_balanced_partition(bytes, 1);
  for (std::size_t s : part.owner) EXPECT_EQ(s, 0u);
}

TEST(Sharding, BalancesBytes) {
  std::vector<double> bytes = {50, 30, 20, 20, 10, 10};
  const auto part = kv::byte_balanced_partition(bytes, 2);
  const auto loads = kv::partition_bytes(bytes, part);
  EXPECT_DOUBLE_EQ(loads[0] + loads[1], 140.0);
  EXPECT_NEAR(loads[0], loads[1], 10.0);  // greedy gets within one block
}

TEST(Sharding, EveryShardNonEmptyWhenEnoughBlocks) {
  std::vector<double> bytes(8, 10.0);
  const auto part = kv::byte_balanced_partition(bytes, 4);
  const auto loads = kv::partition_bytes(bytes, part);
  for (double l : loads) EXPECT_GT(l, 0.0);
}

TEST(Sharding, RejectsZeroShards) {
  std::vector<double> bytes = {1.0};
  EXPECT_THROW((void)kv::byte_balanced_partition(bytes, 0),
               util::CheckError);
}

// ------------------------------------------------------------ sharded BSP

TEST(ShardedBsp, SinglePsMatchesPlainBspSamples) {
  const auto spec = models::tiny_mlp();
  const auto cfg = ext_config(2, 2);
  sync::ShardedBspSync sharded;
  runtime::Engine engine(spec, cfg, sharded);
  const auto r = engine.run();
  EXPECT_EQ(sharded.name(), "BSP(x1PS)");
  EXPECT_DOUBLE_EQ(r.total_samples, 2.0 * 2.0 * 16.0 * 16.0);
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(ShardedBsp, TwoPsFasterThanOne) {
  const auto spec = models::resnet50_cifar10();
  auto cfg1 = ext_config(8, 3);
  auto cfg2 = cfg1;
  cfg2.cluster.num_ps = 2;
  sync::ShardedBspSync one;
  sync::ShardedBspSync two;
  runtime::Engine e1(spec, cfg1, one);
  const auto r1 = e1.run();
  runtime::Engine e2(spec, cfg2, two);
  const auto r2 = e2.run();
  EXPECT_GT(r2.throughput, r1.throughput);
  EXPECT_LT(r2.mean_bst_s, r1.mean_bst_s);
}

TEST(ShardedBsp, MatchesBspNumerics) {
  // With identical configs, sharded BSP and plain BSP apply identical
  // updates (mean gradient, same LR), so accuracy trajectories agree.
  const auto spec = models::tiny_mlp();
  const auto cfg = ext_config(2, 3);
  sync::BspSync plain;
  sync::ShardedBspSync sharded;
  runtime::Engine e1(spec, cfg, plain);
  const auto r1 = e1.run();
  runtime::Engine e2(spec, cfg, sharded);
  const auto r2 = e2.run();
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_NEAR(r1.curve[i].metric, r2.curve[i].metric, 1e-9);
  }
}

// ------------------------------------------------------------ multi-PS OSP

TEST(MultiPsOsp, RunsAndNames) {
  const auto spec = models::resnet50_cifar10();
  auto cfg = ext_config(4, 4);
  cfg.cluster.num_ps = 2;
  core::OspSync osp;
  runtime::Engine engine(spec, cfg, osp);
  const auto r = engine.run();
  EXPECT_EQ(osp.num_ps(), 2u);
  EXPECT_EQ(r.sync_name, "OSP(x2PS)");
  EXPECT_GT(r.total_samples, 0.0);
}

TEST(MultiPsOsp, TwoPsReducesBst) {
  const auto spec = models::resnet50_cifar10();
  auto cfg1 = ext_config(8, 8);
  auto cfg2 = cfg1;
  cfg2.cluster.num_ps = 2;
  core::OspSync one;
  core::OspSync two;
  runtime::Engine e1(spec, cfg1, one);
  const auto r1 = e1.run();
  runtime::Engine e2(spec, cfg2, two);
  const auto r2 = e2.run();
  EXPECT_LT(r2.steady_bst_s, r1.steady_bst_s);
  EXPECT_GE(r2.throughput, r1.throughput * 0.99);
}

TEST(MultiPsOsp, UmaxScalesWithPs) {
  const auto spec = models::vgg16_cifar10();  // bandwidth-bound U_max
  auto cfg1 = ext_config(8, 1);
  auto cfg2 = cfg1;
  cfg2.cluster.num_ps = 2;
  core::OspSync one;
  core::OspSync two;
  runtime::Engine e1(spec, cfg1, one);
  (void)e1.run();
  runtime::Engine e2(spec, cfg2, two);
  (void)e2.run();
  EXPECT_GT(two.u_max(), one.u_max());
}

TEST(MultiPsOsp, AccuracyMatchesSinglePs) {
  // Sharding is a communication-layer change; the numerics are identical.
  const auto spec = models::tiny_mlp();
  auto cfg1 = ext_config(2, 4);
  auto cfg2 = cfg1;
  cfg2.cluster.num_ps = 3;
  core::OspSync one;
  core::OspSync three;
  runtime::Engine e1(spec, cfg1, one);
  const auto r1 = e1.run();
  runtime::Engine e2(spec, cfg2, three);
  const auto r2 = e2.run();
  EXPECT_NEAR(r1.best_metric, r2.best_metric, 0.08);
  EXPECT_GT(r2.best_metric, 0.5);
}

TEST(MultiPs, ClusterValidation) {
  sim::Simulator sim;
  sim::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_ps = 0;
  EXPECT_THROW(sim::Cluster(sim, cfg), util::CheckError);
  cfg.num_ps = 2;
  cfg.colocated_ps = true;
  EXPECT_THROW(sim::Cluster(sim, cfg), util::CheckError);
}

TEST(MultiPs, RoutesAreDistinctPerPs) {
  sim::Simulator sim;
  sim::ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.num_ps = 2;
  sim::Cluster cluster(sim, cfg);
  EXPECT_EQ(cluster.network().num_links(), 8u);  // 4 nodes × 2 links
  const auto r0 = cluster.route_to_ps(0, 0);
  const auto r1 = cluster.route_to_ps(0, 1);
  EXPECT_EQ(r0[0], r1[0]);  // same worker uplink
  EXPECT_NE(r0[1], r1[1]);  // different PS downlinks
}

}  // namespace
}  // namespace osp
