// Additional nn coverage: composite-model gradient checks, input
// validation, numerical edge cases, and overfit micro-benchmarks that
// pin down trainability of the building blocks.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/norm.hpp"
#include "nn/optimizer.hpp"
#include "nn/qa_head.hpp"
#include "nn/registry.hpp"
#include "nn/sequential.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::nn {
namespace {

using tensor::Tensor;

Tensor randn(tensor::Shape shape, util::Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data()) v = static_cast<float>(rng.normal() * scale);
  return t;
}

TEST(CompositeGradients, ConvLinearChain) {
  // Whole-chain gradient check through conv → tanh → flatten → fc (smooth
  // nonlinearities only: ReLU/maxpool kinks make finite differences
  // invalid under weight perturbations and are covered by the per-layer
  // checks in test_nn_layers).
  util::Rng rng(101);
  Sequential m;
  m.emplace<Conv2d>("conv", 2, 3, 4, 4, 3, 1, 1, rng);
  m.emplace<Tanh>("tanh");
  m.emplace<Flatten>("flat");
  m.emplace<Linear>("fc", 48, 2, rng);
  FlatModel flat(m);

  const Tensor in = randn({2, 2, 4, 4}, rng);
  std::vector<std::int32_t> labels = {0, 1};

  m.zero_grad();
  const Tensor logits = m.forward(in, true);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  (void)m.backward(loss.grad_logits);
  std::vector<float> analytic(flat.total_params());
  flat.gather_grads(analytic);

  std::vector<float> params(flat.total_params());
  flat.gather_params(params);
  const float eps = 1e-2f;
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 24);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + eps;
    flat.scatter_params(params);
    const double up =
        softmax_cross_entropy(m.forward(in, true), labels).loss;
    params[i] = saved - eps;
    flat.scatter_params(params);
    const double down =
        softmax_cross_entropy(m.forward(in, true), labels).loss;
    params[i] = saved;
    flat.scatter_params(params);
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, 3e-2 * std::max(1.0, std::abs(fd)))
        << "param " << i;
  }
}

TEST(CompositeGradients, EmbeddingAttentionSpanHeadChain) {
  // The full QA stack against finite differences on the span loss.
  util::Rng rng(102);
  Sequential m;
  m.emplace<Embedding>("emb", 12, 6, rng);
  m.emplace<SelfAttention>("attn", 6, rng);
  m.emplace<SpanHead>("head", 6, rng);
  FlatModel flat(m);

  Tensor ids({2, 4});
  for (std::size_t i = 0; i < ids.numel(); ++i) {
    ids[i] = static_cast<float>(rng.uniform_u64(12));
  }
  std::vector<std::int32_t> starts = {0, 2};
  std::vector<std::int32_t> ends = {1, 3};

  m.zero_grad();
  const Tensor logits = m.forward(ids, true);
  const LossResult loss = span_cross_entropy(logits, starts, ends);
  (void)m.backward(loss.grad_logits);
  std::vector<float> analytic(flat.total_params());
  flat.gather_grads(analytic);

  std::vector<float> params(flat.total_params());
  flat.gather_params(params);
  const float eps = 1e-2f;
  const std::size_t stride = std::max<std::size_t>(1, params.size() / 20);
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const float saved = params[i];
    params[i] = saved + eps;
    flat.scatter_params(params);
    const double up =
        span_cross_entropy(m.forward(ids, true), starts, ends).loss;
    params[i] = saved - eps;
    flat.scatter_params(params);
    const double down =
        span_cross_entropy(m.forward(ids, true), starts, ends).loss;
    params[i] = saved;
    flat.scatter_params(params);
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, 3e-2 * std::max(1.0, std::abs(fd)))
        << "param " << i;
  }
}

TEST(Overfit, TinyMlpMemorizesFourPoints) {
  // A 2-layer MLP must drive the loss to ~0 on four fixed samples — the
  // canonical trainability smoke test.
  util::Rng rng(103);
  Sequential m;
  m.emplace<Linear>("fc0", 3, 16, rng);
  m.emplace<Tanh>("tanh");
  m.emplace<Linear>("fc1", 16, 4, rng);
  FlatModel flat(m);
  std::vector<float> params(flat.total_params()), grad(flat.total_params());
  flat.gather_params(params);
  SgdOptimizer opt(params.size(), 0.9);

  const Tensor x = randn({4, 3}, rng);
  std::vector<std::int32_t> y = {0, 1, 2, 3};
  double loss_value = 0.0;
  for (int step = 0; step < 300; ++step) {
    flat.scatter_params(params);
    m.zero_grad();
    const LossResult r = softmax_cross_entropy(m.forward(x, true), y);
    (void)m.backward(r.grad_logits);
    flat.gather_grads(grad);
    opt.step(params, grad, 0.05);
    loss_value = r.loss;
  }
  EXPECT_LT(loss_value, 0.01);
}

TEST(Overfit, ConvNetLearnsXorOfQuadrants) {
  // Conv stack on a spatial pattern a linear model cannot represent:
  // label = (sign of quadrant sums XOR). Verifies real spatial learning.
  util::Rng rng(104);
  Sequential m;
  m.emplace<Conv2d>("conv0", 1, 4, 4, 4, 3, 1, 1, rng);
  m.emplace<ReLU>("r0");
  m.emplace<Flatten>("flat");
  m.emplace<Linear>("fc", 64, 2, rng);
  FlatModel flat(m);
  std::vector<float> params(flat.total_params()), grad(flat.total_params());
  flat.gather_params(params);
  SgdOptimizer opt(params.size(), 0.9);

  // 16 training images: two diagonal blobs = class 1, else class 0.
  Tensor x({16, 1, 4, 4});
  std::vector<std::int32_t> y(16);
  for (int i = 0; i < 16; ++i) {
    const bool diag = i % 2 == 0;
    y[i] = diag ? 1 : 0;
    for (std::size_t h = 0; h < 4; ++h) {
      for (std::size_t w = 0; w < 4; ++w) {
        const bool tl = h < 2 && w < 2;
        const bool br = h >= 2 && w >= 2;
        const bool tr = h < 2 && w >= 2;
        const bool bl = h >= 2 && w < 2;
        const bool lit = diag ? (tl || br) : (tr || bl);
        x.at(i, 0, h, w) = lit ? 1.0f : 0.0f;
      }
    }
    // Add per-sample noise so examples are not literally identical.
    for (std::size_t p = 0; p < 16; ++p) {
      x[static_cast<std::size_t>(i) * 16 + p] +=
          static_cast<float>(rng.normal() * 0.05);
    }
  }
  double acc = 0.0;
  for (int step = 0; step < 200; ++step) {
    flat.scatter_params(params);
    m.zero_grad();
    const Tensor logits = m.forward(x, true);
    const LossResult r = softmax_cross_entropy(logits, y);
    (void)m.backward(r.grad_logits);
    flat.gather_grads(grad);
    opt.step(params, grad, 0.05);
    acc = top1_accuracy(logits, y);
  }
  EXPECT_GT(acc, 0.95);
}

TEST(Validation, LinearRejectsWrongWidth) {
  util::Rng rng(105);
  Linear fc("fc", 4, 2, rng);
  Tensor bad({2, 5});
  EXPECT_THROW((void)fc.forward(bad, false), util::CheckError);
}

TEST(Validation, Conv2dRejectsWrongGeometry) {
  util::Rng rng(106);
  Conv2d conv("conv", 3, 4, 8, 8, 3, 1, 1, rng);
  Tensor bad({1, 3, 4, 4});
  EXPECT_THROW((void)conv.forward(bad, false), util::CheckError);
}

TEST(Validation, AttentionRejectsWrongDim) {
  util::Rng rng(107);
  SelfAttention attn("attn", 8, rng);
  Tensor bad({1, 4, 6});
  EXPECT_THROW((void)attn.forward(bad, false), util::CheckError);
}

TEST(Validation, SequentialRejectsEmptyForward) {
  Sequential empty;
  Tensor x({1, 1});
  EXPECT_THROW((void)empty.forward(x, false), util::CheckError);
}

TEST(NumericalEdge, GeluExtremeInputsFinite) {
  Gelu gelu("gelu");
  Tensor x = Tensor::from({-50.0f, -1e-8f, 0.0f, 1e-8f, 50.0f});
  x.reshape({1, 5});
  const Tensor y = gelu.forward(x, false);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(y[4], 50.0f, 1e-3f);  // GELU(x) → x for large x
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);   // GELU(x) → 0 for very negative x
}

TEST(NumericalEdge, LayerNormConstantRowIsStable) {
  LayerNorm ln("ln", 4);
  Tensor x({1, 4}, 3.0f);  // zero variance
  const Tensor y = ln.forward(x, false);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(NumericalEdge, SpanLossExtremeLogitsFinite) {
  Tensor logits({1, 8});
  logits.at(0, 0) = 1e4f;
  logits.at(0, 7) = -1e4f;
  std::vector<std::int32_t> s = {0}, e = {3};
  const LossResult r = span_cross_entropy(logits, s, e);
  EXPECT_TRUE(std::isfinite(r.loss));
  for (float v : r.grad_logits.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(SpanHeadLayout, StartAndEndHeadsIndependent) {
  util::Rng rng(108);
  SpanHead head("span", 3, rng);
  // Two positions with identical content must get identical logits in
  // both heads (the head is positionwise).
  Tensor in({1, 2, 3});
  for (std::size_t d = 0; d < 3; ++d) {
    in[d] = in[3 + d] = static_cast<float>(d) * 0.5f;
  }
  const Tensor out = head.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), out.at(0, 1));  // start logits equal
  EXPECT_FLOAT_EQ(out.at(0, 2), out.at(0, 3));  // end logits equal
}

}  // namespace
}  // namespace osp::nn
