// End-to-end smoke tests: one tiny workload trained to convergence under
// each sync model, asserting the engine's basic invariants.
#include <gtest/gtest.h>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/r2sp.hpp"
#include "sync/ssp.hpp"

namespace osp {
namespace {

runtime::EngineConfig tiny_config() {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 8;
  cfg.seed = 11;
  return cfg;
}

TEST(Smoke, BspTrainsTinyMlp) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  runtime::Engine engine(spec, tiny_config(), sync);
  const runtime::RunResult r = engine.run();
  EXPECT_GT(r.total_samples, 0.0);
  EXPECT_GT(r.total_time_s, 0.0);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.best_metric, 0.5) << "BSP failed to learn the tiny task";
  EXPECT_FALSE(r.curve.empty());
  EXPECT_EQ(r.epoch_losses.size(), 8u);
}

TEST(Smoke, AspTrainsTinyMlp) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::AspSync sync;
  runtime::Engine engine(spec, tiny_config(), sync);
  const runtime::RunResult r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(Smoke, R2spTrainsTinyMlp) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::R2spSync sync;
  runtime::Engine engine(spec, tiny_config(), sync);
  const runtime::RunResult r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(Smoke, SspTrainsTinyMlp) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::SspSync sync(3);
  runtime::Engine engine(spec, tiny_config(), sync);
  const runtime::RunResult r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
}

TEST(Smoke, OspTrainsTinyMlp) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  core::OspSync sync;
  runtime::Engine engine(spec, tiny_config(), sync);
  const runtime::RunResult r = engine.run();
  EXPECT_GT(r.best_metric, 0.5);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(Smoke, DeterministicRepeatedRuns) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  auto run_once = [&] {
    sync::BspSync sync;
    runtime::Engine engine(spec, tiny_config(), sync);
    return engine.run();
  };
  const runtime::RunResult a = run_once();
  const runtime::RunResult b = run_once();
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_DOUBLE_EQ(a.best_metric, b.best_metric);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].metric, b.curve[i].metric);
  }
}

}  // namespace
}  // namespace osp
