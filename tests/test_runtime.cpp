// Engine and metrics tests: lifecycle invariants, PS accessors, the serial
// PS queue, LR scheduling over worker epochs, and recorder behaviour.
#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "runtime/metrics.hpp"
#include "sync/bsp.hpp"
#include "util/check.hpp"

namespace osp::runtime {
namespace {

EngineConfig quick_config(std::size_t workers = 2, std::size_t epochs = 2) {
  EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.max_epochs = epochs;
  cfg.seed = 5;
  return cfg;
}

TEST(MetricsRecorder, BestMetricAndFirstReaching) {
  MetricsRecorder rec;
  rec.record_eval({1.0, 100, 0.5, 1.0});
  rec.record_eval({2.0, 200, 0.8, 0.5});
  rec.record_eval({3.0, 300, 0.7, 0.4});
  EXPECT_DOUBLE_EQ(rec.best_metric(), 0.8);
  const auto hit = rec.first_reaching(0.75);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->time_s, 2.0);
  EXPECT_FALSE(rec.first_reaching(0.9).has_value());
}

TEST(MetricsRecorder, BstPercentile) {
  MetricsRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record_bst(static_cast<double>(i));
  EXPECT_NEAR(rec.bst_percentile(0.99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(rec.bst().mean(), 50.5);
}

TEST(MetricsRecorder, EmptyIsSafe) {
  MetricsRecorder rec;
  EXPECT_DOUBLE_EQ(rec.best_metric(), 0.0);
  EXPECT_DOUBLE_EQ(rec.bst_percentile(0.5), 0.0);
  EXPECT_FALSE(rec.first_reaching(0.0).has_value());
}

TEST(Engine, ExposesBlocksAndScaledBytes) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  Engine engine(spec, quick_config(), sync);
  EXPECT_GT(engine.num_blocks(), 1u);
  double total = 0.0;
  for (std::size_t i = 0; i < engine.num_blocks(); ++i) {
    total += engine.block_bytes(i);
  }
  EXPECT_NEAR(total, spec.real_param_bytes, 1.0);
}

TEST(Engine, BaseComputeTimeMatchesModel) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig cfg = quick_config();
  Engine engine(spec, cfg, sync);
  const double expected = spec.flops_per_sample *
                          static_cast<double>(spec.batch_size) /
                          (cfg.cluster.node.device_flops *
                           cfg.cluster.node.efficiency);
  EXPECT_NEAR(engine.base_compute_time(), expected, 1e-12);
}

TEST(Engine, PsApplyDelayProportional) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig cfg = quick_config();
  cfg.cluster.ps_apply_bytes_per_s = 1e9;
  Engine engine(spec, cfg, sync);
  EXPECT_NEAR(engine.ps_apply_delay(2e9, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(engine.ps_apply_delay(1e9, 3.0), 3.0, 1e-12);
}

TEST(Engine, PsApplyDisabledIsZero) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig cfg = quick_config();
  cfg.cluster.ps_apply_bytes_per_s = 0.0;
  Engine engine(spec, cfg, sync);
  EXPECT_DOUBLE_EQ(engine.ps_apply_delay(1e9), 0.0);
}

TEST(Engine, PsSubmitSerializesJobs) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  Engine engine(spec, quick_config(), sync);
  std::vector<double> completions;
  engine.ps_submit(1.0, [&] { completions.push_back(engine.sim().now()); });
  engine.ps_submit(2.0, [&] { completions.push_back(engine.sim().now()); });
  engine.sim().run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);  // queued behind the first
}

TEST(Engine, RunIsSingleUse) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  Engine engine(spec, quick_config(), sync);
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), util::CheckError);
}

TEST(Engine, SamplesMatchEpochsTimesShards) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  const EngineConfig cfg = quick_config(4, 3);
  Engine engine(spec, cfg, sync);
  const RunResult r = engine.run();
  // Each worker: shard 128 → 8 batches of 16 per epoch → 3 epochs.
  const double expected = 4.0 * 3.0 * 8.0 * 16.0;
  EXPECT_DOUBLE_EQ(r.total_samples, expected);
}

TEST(Engine, EpochLossesAreDecreasing) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  Engine engine(spec, quick_config(2, 6), sync);
  const RunResult r = engine.run();
  ASSERT_EQ(r.epoch_losses.size(), 6u);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(Engine, WorkerComputeOverheadExtendsBct) {
  const WorkloadSpec spec = models::tiny_mlp();
  auto run_with_overhead = [&](double fraction) {
    sync::BspSync sync;
    EngineConfig cfg = quick_config(2, 2);
    Engine engine(spec, cfg, sync);
    engine.set_worker_compute_overhead(0, fraction);
    return engine.run().mean_bct_s;
  };
  const double base = run_with_overhead(0.0);
  const double loaded = run_with_overhead(0.5);
  // Worker 0 is half the samples; +50 % on it = +25 % on the mean.
  EXPECT_NEAR(loaded / base, 1.25, 0.02);
}

TEST(Engine, MaxVirtualTimeCapsRun) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig cfg = quick_config(2, 50);
  cfg.max_virtual_time_s = 1.0;
  Engine engine(spec, cfg, sync);
  const RunResult r = engine.run();
  EXPECT_DOUBLE_EQ(r.total_time_s, 1.0);
}

TEST(Engine, TargetsReportedWhenReached) {
  WorkloadSpec spec = models::tiny_mlp();
  spec.target_metric = 0.5;  // easy target on this dataset
  sync::BspSync sync;
  Engine engine(spec, quick_config(2, 6), sync);
  const RunResult r = engine.run();
  ASSERT_TRUE(r.iters_to_target.has_value());
  ASSERT_TRUE(r.time_to_target_s.has_value());
  EXPECT_GT(*r.iters_to_target, 0.0);
  EXPECT_LE(*r.time_to_target_s, r.total_time_s);
}

TEST(Engine, UnreachableTargetIsNullopt) {
  WorkloadSpec spec = models::tiny_mlp();
  spec.target_metric = 1.1;  // impossible
  sync::BspSync sync;
  Engine engine(spec, quick_config(2, 2), sync);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.iters_to_target.has_value());
}

TEST(Engine, CurveIsTimeMonotonic) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig cfg = quick_config(2, 4);
  cfg.eval_every_samples = 128;
  Engine engine(spec, cfg, sync);
  const RunResult r = engine.run();
  ASSERT_GE(r.curve.size(), 2u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].time_s, r.curve[i - 1].time_s);
    EXPECT_GE(r.curve[i].samples, r.curve[i - 1].samples);
  }
}

TEST(Engine, ValidatesConfig) {
  const WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  EngineConfig bad = quick_config(0, 2);
  EXPECT_THROW(Engine(spec, bad, sync), util::CheckError);
  bad = quick_config(2, 0);
  EXPECT_THROW(Engine(spec, bad, sync), util::CheckError);
}

TEST(Engine, HeterogeneousSpeedsSlowFastersDown) {
  // BSP throughput is gated by the slowest worker.
  const WorkloadSpec spec = models::tiny_mlp();
  auto run_with = [&](std::vector<double> speeds) {
    sync::BspSync sync;
    EngineConfig cfg = quick_config(2, 2);
    cfg.cluster.speed_factors = std::move(speeds);
    Engine engine(spec, cfg, sync);
    return engine.run().throughput;
  };
  const double homo = run_with({1.0, 1.0});
  const double hetero = run_with({1.0, 0.5});
  EXPECT_LT(hetero, homo);
}

}  // namespace
}  // namespace osp::runtime
