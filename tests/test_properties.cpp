// Property-based tests: invariants checked over randomized/parameterized
// input sweeps (TEST_P), complementing the example-based suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/gib.hpp"
#include "core/lgp.hpp"
#include "core/pgp.hpp"
#include "core/tuning.hpp"
#include "nn/optimizer.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// ---------------------------------------------------------------- network

class NetworkConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkConservation, AllPayloadBytesDelivered) {
  // Whatever the flow mix, the network must deliver exactly the payload.
  util::Rng rng(GetParam());
  sim::Simulator sim;
  sim::Network net(sim);
  std::vector<sim::LinkId> links;
  for (int i = 0; i < 4; ++i) {
    links.push_back(net.add_link(rng.uniform(100.0, 1000.0),
                                 rng.uniform(0.0, 0.1),
                                 rng.uniform(0.0, 0.3),
                                 rng.uniform(0.0, 0.2)));
  }
  double total = 0.0;
  int completed = 0;
  const int flows = 20;
  for (int f = 0; f < flows; ++f) {
    std::vector<sim::LinkId> route = {links[rng.uniform_u64(4)]};
    const sim::LinkId second = links[rng.uniform_u64(4)];
    if (second != route[0] && rng.bernoulli(0.5)) route.push_back(second);
    const double bytes = rng.uniform(1.0, 5000.0);
    total += bytes;
    // Stagger arrivals.
    sim.schedule(rng.uniform(0.0, 2.0), [&net, route, bytes, &completed] {
      net.start_flow(route, bytes, [&completed] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, flows);
  EXPECT_NEAR(net.bytes_delivered(), total, 1e-6 * total);
  EXPECT_EQ(net.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class FlowSizeMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(FlowSizeMonotonic, BiggerFlowNeverFinishesSooner) {
  // Two flows sharing one link, equal start: the bigger one finishes last
  // (or tied) regardless of link parameters.
  const double ratio = GetParam();
  sim::Simulator sim;
  sim::Network net(sim);
  const sim::LinkId l = net.add_link(777.0, 0.01, 0.05, 0.1);
  double t_small = -1.0, t_big = -1.0;
  net.start_flow({l}, 1000.0, [&] { t_small = sim.now(); });
  net.start_flow({l}, 1000.0 * ratio, [&] { t_big = sim.now(); });
  sim.run();
  EXPECT_GE(t_big, t_small);
}

INSTANTIATE_TEST_SUITE_P(Ratios, FlowSizeMonotonic,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 10.0));

class IncastAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(IncastAlphaSweep, CollapseOnlySlowsThingsDown) {
  // Completion under incast alpha must be >= the alpha=0 completion.
  const double alpha = GetParam();
  auto finish_time = [](double a) {
    sim::Simulator sim;
    sim::Network net(sim);
    const sim::LinkId l = net.add_link(1000.0, 0.0, 0.0, a);
    double last = 0.0;
    for (int f = 0; f < 6; ++f) {
      net.start_flow({l}, 500.0, [&last, &sim] { last = sim.now(); });
    }
    sim.run();
    return last;
  };
  EXPECT_GE(finish_time(alpha) + 1e-12, finish_time(0.0));
}

INSTANTIATE_TEST_SUITE_P(Alphas, IncastAlphaSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.3));

// ------------------------------------------------------------------- gib

class GibBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(GibBudgetSweep, UnimportantBytesNeverExceedBudget) {
  const double budget_fraction = GetParam();
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(20);
    std::vector<double> bytes(n);
    double total = 0.0;
    for (double& b : bytes) {
      b = rng.uniform(1.0, 100.0);
      total += b;
    }
    std::vector<double> importance(n);
    for (double& v : importance) v = rng.uniform();
    const double budget = budget_fraction * total;
    const core::Gib gib = core::Gib::from_ranking(
        core::rank_ascending(importance), bytes, budget);
    EXPECT_LE(gib.unimportant_bytes(bytes), budget + 1e-9);
    EXPECT_NEAR(gib.unimportant_bytes(bytes) + gib.important_bytes(bytes),
                total, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, GibBudgetSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

TEST(GibProperty, SerializeRoundTripRandom) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_u64(300);
    core::Gib gib = core::Gib::all_unimportant(n);
    for (std::size_t i = 0; i < n; ++i) {
      gib.set_important(i, rng.bernoulli(0.5));
    }
    EXPECT_EQ(core::Gib::deserialize(gib.serialize()), gib);
  }
}

TEST(GibProperty, MoreBudgetNeverFewerUnimportantBytes) {
  util::Rng rng(13);
  std::vector<double> bytes(12);
  double total = 0.0;
  for (double& b : bytes) {
    b = rng.uniform(1.0, 50.0);
    total += b;
  }
  std::vector<double> importance(12);
  for (double& v : importance) v = rng.uniform();
  const auto order = core::rank_ascending(importance);
  double prev = -1.0;
  for (double frac = 0.0; frac <= 1.0; frac += 0.1) {
    const core::Gib gib = core::Gib::from_ranking(order, bytes, frac * total);
    const double unimp = gib.unimportant_bytes(bytes);
    EXPECT_GE(unimp, prev);
    prev = unimp;
  }
}

// ---------------------------------------------------------------- tuning

class TunerMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(TunerMonotonic, LowerLossNeverSmallerBudget) {
  const double umax = GetParam();
  core::SguTuner tuner(umax);
  (void)tuner.on_epoch_loss(1, 3.0);
  double prev = -1.0;
  for (int e = 2; e <= 12; ++e) {
    const double loss = 3.0 * std::pow(0.7, e - 1);
    const double budget = tuner.on_epoch_loss(static_cast<std::size_t>(e),
                                              loss);
    EXPECT_GE(budget, prev);
    EXPECT_LE(budget, umax);
    prev = budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Umaxes, TunerMonotonic,
                         ::testing::Values(10.0, 1e3, 1e6, 1e9));

TEST(TuningProperty, UpperBoundMonotoneInComputeTime) {
  core::IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1.25e9;
  p.num_workers = 8;
  p.model_bytes = 1e12;  // cap never binds
  double prev = 0.0;
  for (double tc = 0.1; tc < 2.0; tc += 0.1) {
    p.compute_time_s = tc;
    const double bound = core::ics_upper_bound(p);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(TuningProperty, UpperBoundMonotoneDecreasingInWorkers) {
  core::IcsBudgetParams p;
  p.bandwidth_bytes_per_s = 1.25e9;
  p.compute_time_s = 1.0;
  p.model_bytes = 1e12;
  double prev = 1e18;
  for (std::size_t n = 1; n <= 64; n *= 2) {
    p.num_workers = n;
    const double bound = core::ics_upper_bound(p);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

// ------------------------------------------------------------------- lgp

TEST(LgpProperty, PredictThenCorrectAlwaysLandsOnGlobal) {
  util::Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t blocks_n = 1 + rng.uniform_u64(6);
    std::vector<nn::LayerBlockInfo> blocks;
    std::size_t offset = 0;
    for (std::size_t b = 0; b < blocks_n; ++b) {
      const std::size_t numel = 1 + rng.uniform_u64(8);
      blocks.push_back({"b", offset, numel});
      offset += numel;
    }
    core::Gib gib = core::Gib::all_important(blocks_n);
    for (std::size_t b = 0; b < blocks_n; ++b) {
      gib.set_important(b, rng.bernoulli(0.5));
    }
    std::vector<float> params(offset), grad(offset), global(offset);
    for (std::size_t i = 0; i < offset; ++i) {
      params[i] = static_cast<float>(rng.normal());
      grad[i] = static_cast<float>(rng.normal());
      global[i] = static_cast<float>(rng.normal());
    }
    const std::vector<float> before = params;
    core::lgp_apply_local_step(params, grad, rng.uniform(0.01, 1.0), blocks,
                               gib);
    core::lgp_correct_blocks(params, global, blocks, gib);
    for (std::size_t b = 0; b < blocks_n; ++b) {
      const auto& info = blocks[b];
      for (std::size_t i = info.offset; i < info.offset + info.numel; ++i) {
        if (gib.important(b)) {
          EXPECT_FLOAT_EQ(params[i], before[i]);  // untouched
        } else {
          EXPECT_FLOAT_EQ(params[i], global[i]);  // exactly corrected
        }
      }
    }
  }
}

TEST(PgpProperty, ImportanceNonNegativeAndAdditive) {
  util::Rng rng(31);
  const std::size_t n = 64;
  std::vector<float> params(n), grads(n);
  for (std::size_t i = 0; i < n; ++i) {
    params[i] = static_cast<float>(rng.normal());
    grads[i] = static_cast<float>(rng.normal());
  }
  // One block covering everything vs a partition: sums must match.
  std::vector<nn::LayerBlockInfo> whole = {{"all", 0, n}};
  std::vector<nn::LayerBlockInfo> parts = {
      {"a", 0, 20}, {"b", 20, 30}, {"c", 50, 14}};
  const double total = core::pgp_importance(params, grads, whole)[0];
  const auto split = core::pgp_importance(params, grads, parts);
  EXPECT_GE(total, 0.0);
  EXPECT_NEAR(split[0] + split[1] + split[2], total, 1e-9 * total);
}

// --------------------------------------------------------------- optimizer

class SgdEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(SgdEquivalence, BlockwiseStepsEqualFullStep) {
  // Stepping a parameter vector block-by-block must equal one full step —
  // the invariant OSP's two-stage updates rely on.
  const double momentum = GetParam();
  util::Rng rng(41);
  const std::size_t n = 40;
  std::vector<float> full(n), blockwise(n), grad(n);
  for (std::size_t i = 0; i < n; ++i) {
    full[i] = blockwise[i] = static_cast<float>(rng.normal());
    grad[i] = static_cast<float>(rng.normal());
  }
  nn::SgdOptimizer opt_full(n, momentum);
  nn::SgdOptimizer opt_block(n, momentum);
  for (int step = 0; step < 5; ++step) {
    opt_full.step(full, grad, 0.1);
    opt_block.step_range(std::span<float>(blockwise).subspan(0, 15),
                         std::span<const float>(grad).subspan(0, 15), 0.1, 0);
    opt_block.step_range(std::span<float>(blockwise).subspan(15, 25),
                         std::span<const float>(grad).subspan(15, 25), 0.1,
                         15);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(full[i], blockwise[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Momenta, SgdEquivalence,
                         ::testing::Values(0.0, 0.5, 0.9));

// ----------------------------------------------------------------- tensor

class MatmulAssociativity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulAssociativity, Holds) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  auto rand_mat = [&](std::size_t r, std::size_t c) {
    tensor::Tensor t({r, c});
    for (float& v : t.data()) v = static_cast<float>(rng.normal() * 0.3);
    return t;
  };
  const tensor::Tensor a = rand_mat(n, n);
  const tensor::Tensor b = rand_mat(n, n);
  const tensor::Tensor c = rand_mat(n, n);
  tensor::Tensor ab({n, n}), ab_c({n, n});
  tensor::Tensor bc({n, n}), a_bc({n, n});
  tensor::matmul(a, b, ab);
  tensor::matmul(ab, c, ab_c);
  tensor::matmul(b, c, bc);
  tensor::matmul(a, bc, a_bc);
  for (std::size_t i = 0; i < ab_c.numel(); ++i) {
    EXPECT_NEAR(ab_c[i], a_bc[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulAssociativity,
                         ::testing::Values(2, 5, 16, 31));

// -------------------------------------------------------------- simulator

TEST(SimulatorProperty, RandomEventsFireInSortedOrder) {
  util::Rng rng(55);
  sim::Simulator sim;
  std::vector<double> fired;
  std::vector<double> scheduled;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    scheduled.push_back(t);
    sim.schedule_at(t, [t, &fired] { fired.push_back(t); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), scheduled.size());
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  std::sort(scheduled.begin(), scheduled.end());
  EXPECT_EQ(fired, scheduled);
}

}  // namespace
}  // namespace osp
