// Dataset and loader tests: determinism, sharding, shuffling, and the
// structural properties the trainer depends on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "data/loader.hpp"
#include "data/synthetic_image.hpp"
#include "data/synthetic_qa.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::data {
namespace {

ImageDatasetConfig small_image_config() {
  ImageDatasetConfig cfg;
  cfg.num_examples = 64;
  cfg.num_classes = 4;
  cfg.channels = 2;
  cfg.height = 3;
  cfg.width = 3;
  cfg.seed = 7;
  return cfg;
}

TEST(SyntheticImage, DeterministicAcrossInstances) {
  SyntheticImageDataset a(small_image_config());
  SyntheticImageDataset b(small_image_config());
  std::vector<std::size_t> idx = {0, 5, 63};
  const Batch ba = a.make_batch(idx);
  const Batch bb = b.make_batch(idx);
  ASSERT_EQ(ba.inputs.numel(), bb.inputs.numel());
  for (std::size_t i = 0; i < ba.inputs.numel(); ++i) {
    EXPECT_FLOAT_EQ(ba.inputs[i], bb.inputs[i]);
  }
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(SyntheticImage, SameExampleRegardlessOfBatchComposition) {
  SyntheticImageDataset ds(small_image_config());
  const Batch alone = ds.make_batch(std::vector<std::size_t>{10});
  const Batch grouped = ds.make_batch(std::vector<std::size_t>{3, 10, 40});
  const std::size_t px = ds.pixels();
  for (std::size_t p = 0; p < px; ++p) {
    EXPECT_FLOAT_EQ(alone.inputs[p], grouped.inputs[px + p]);
  }
}

TEST(SyntheticImage, LabelsRoundRobin) {
  SyntheticImageDataset ds(small_image_config());
  EXPECT_EQ(ds.label_of(0), 0);
  EXPECT_EQ(ds.label_of(1), 1);
  EXPECT_EQ(ds.label_of(4), 0);
  EXPECT_EQ(ds.label_of(63), 3);
}

TEST(SyntheticImage, DifferentNoiseSeedsDifferentExamplesSameTask) {
  ImageDatasetConfig c1 = small_image_config();
  ImageDatasetConfig c2 = small_image_config();
  c1.noise_seed = 100;
  c2.noise_seed = 200;
  SyntheticImageDataset a(c1), b(c2);
  const Batch ba = a.make_batch(std::vector<std::size_t>{0});
  const Batch bb = b.make_batch(std::vector<std::size_t>{0});
  bool identical = true;
  for (std::size_t i = 0; i < ba.inputs.numel(); ++i) {
    identical &= ba.inputs[i] == bb.inputs[i];
  }
  EXPECT_FALSE(identical);
  EXPECT_EQ(ba.labels, bb.labels);  // same task → same labels
}

TEST(SyntheticImage, SeparationControlsSignal) {
  ImageDatasetConfig weak = small_image_config();
  weak.separation = 0.0;  // prototypes collapse to zero
  SyntheticImageDataset ds(weak);
  const Batch b = ds.make_batch(std::vector<std::size_t>{0, 1});
  // With zero separation the class means vanish; values are pure noise of
  // stddev `noise` — just verify they are finite and non-degenerate.
  double sum = 0.0;
  for (float v : b.inputs.data()) sum += std::abs(v);
  EXPECT_GT(sum, 0.0);
}

TEST(SyntheticImage, RejectsOutOfRangeIndex) {
  SyntheticImageDataset ds(small_image_config());
  EXPECT_THROW((void)ds.make_batch(std::vector<std::size_t>{64}),
               util::CheckError);
}

QaDatasetConfig small_qa_config() {
  QaDatasetConfig cfg;
  cfg.num_examples = 32;
  cfg.seq_len = 10;
  cfg.vocab = 40;
  cfg.answer_vocab = 8;
  cfg.max_answer_len = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(SyntheticQa, AnswerSpanMarkedByVocabulary) {
  SyntheticQaDataset ds(small_qa_config());
  std::vector<std::size_t> idx(32);
  for (std::size_t i = 0; i < 32; ++i) idx[i] = i;
  const Batch b = ds.make_batch(idx);
  for (std::size_t r = 0; r < 32; ++r) {
    const auto start = static_cast<std::size_t>(b.starts[r]);
    const auto end = static_cast<std::size_t>(b.ends[r]);
    ASSERT_LE(start, end);
    ASSERT_LT(end, 10u);
    for (std::size_t t = 0; t < 10; ++t) {
      const auto token = static_cast<std::size_t>(b.inputs[r * 10 + t]);
      if (t >= start && t <= end) {
        EXPECT_LT(token, 8u) << "answer token outside answer vocab";
      } else {
        EXPECT_GE(token, 8u) << "context token inside answer vocab";
      }
    }
  }
}

TEST(SyntheticQa, SpanLengthBounded) {
  SyntheticQaDataset ds(small_qa_config());
  std::vector<std::size_t> idx(32);
  for (std::size_t i = 0; i < 32; ++i) idx[i] = i;
  const Batch b = ds.make_batch(idx);
  for (std::size_t r = 0; r < 32; ++r) {
    EXPECT_LE(b.ends[r] - b.starts[r] + 1, 3);
  }
}

TEST(SyntheticQa, Deterministic) {
  SyntheticQaDataset a(small_qa_config());
  SyntheticQaDataset b(small_qa_config());
  const Batch ba = a.make_batch(std::vector<std::size_t>{7});
  const Batch bb = b.make_batch(std::vector<std::size_t>{7});
  for (std::size_t i = 0; i < ba.inputs.numel(); ++i) {
    EXPECT_FLOAT_EQ(ba.inputs[i], bb.inputs[i]);
  }
  EXPECT_EQ(ba.starts, bb.starts);
  EXPECT_EQ(ba.ends, bb.ends);
}

TEST(SyntheticQa, ConfigValidation) {
  QaDatasetConfig bad = small_qa_config();
  bad.answer_vocab = 40;  // not a strict sub-vocabulary
  EXPECT_THROW(SyntheticQaDataset{bad}, util::CheckError);
}

TEST(ShardIndices, PartitionExactly) {
  std::set<std::size_t> seen;
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t i : shard_indices(10, w, 3)) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ShardIndices, ContiguousShardsKeepClassBalance) {
  // With round-robin labels (label = idx % C) every contiguous shard must
  // contain all classes — including when gcd(workers, classes) > 1, the
  // case that breaks interleaved sharding.
  for (std::size_t w = 0; w < 8; ++w) {
    const auto shard = shard_indices(640, w, 8);
    std::set<std::size_t> classes;
    for (std::size_t i : shard) classes.insert(i % 10);
    EXPECT_EQ(classes.size(), 10u) << "worker " << w;
  }
}

TEST(ShardIndices, ContiguousAndOrdered) {
  const auto shard = shard_indices(10, 1, 3);
  ASSERT_EQ(shard.size(), 3u);  // [3, 6)
  EXPECT_EQ(shard.front(), 3u);
  EXPECT_EQ(shard.back(), 5u);
}

TEST(ShardIndices, UnevenSizesCoverAll) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < 3; ++w) total += shard_indices(11, w, 3).size();
  EXPECT_EQ(total, 11u);
}

TEST(ShardIndices, RejectsBadWorker) {
  EXPECT_THROW((void)shard_indices(10, 3, 3), util::CheckError);
  EXPECT_THROW((void)shard_indices(10, 0, 0), util::CheckError);
}

TEST(ShardLoader, BatchesPartitionShard) {
  SyntheticImageDataset ds(small_image_config());
  ShardLoader loader(ds, 0, 2, 8, 5);
  EXPECT_EQ(loader.shard_size(), 32u);
  EXPECT_EQ(loader.batches_per_epoch(), 4u);
}

TEST(ShardLoader, EpochShufflesDiffer) {
  SyntheticImageDataset ds(small_image_config());
  ShardLoader loader(ds, 0, 2, 8, 5);
  const Batch e0 = loader.batch(0, 0);
  const Batch e1 = loader.batch(1, 0);
  bool identical = true;
  for (std::size_t i = 0; i < e0.inputs.numel(); ++i) {
    identical &= e0.inputs[i] == e1.inputs[i];
  }
  EXPECT_FALSE(identical) << "per-epoch shuffle had no effect";
}

TEST(ShardLoader, SameEpochSameBatchIsStable) {
  SyntheticImageDataset ds(small_image_config());
  ShardLoader loader(ds, 1, 2, 8, 5);
  const Batch a = loader.batch(3, 2);
  const Batch b = loader.batch(3, 2);
  for (std::size_t i = 0; i < a.inputs.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.inputs[i], b.inputs[i]);
  }
}

TEST(ShardLoader, WorkersSeeDisjointData) {
  SyntheticImageDataset ds(small_image_config());
  ShardLoader l0(ds, 0, 2, 8, 5);
  ShardLoader l1(ds, 1, 2, 8, 5);
  // Same epoch, all batches: the union of examples must be disjoint across
  // workers. Compare via the deterministic pixel content of example 0 of
  // each batch — simpler: shard index sets are disjoint by construction;
  // verify loaders don't crash and produce full batches.
  for (std::size_t b = 0; b < l0.batches_per_epoch(); ++b) {
    EXPECT_EQ(l0.batch(0, b).size(), 8u);
    EXPECT_EQ(l1.batch(0, b).size(), 8u);
  }
}

TEST(ShardLoader, RejectsShardSmallerThanBatch) {
  SyntheticImageDataset ds(small_image_config());
  EXPECT_THROW(ShardLoader(ds, 0, 32, 8, 5), util::CheckError);
}

TEST(ShardLoader, RejectsBatchIndexOutOfRange) {
  SyntheticImageDataset ds(small_image_config());
  ShardLoader loader(ds, 0, 2, 8, 5);
  EXPECT_THROW((void)loader.batch(0, 4), util::CheckError);
}

TEST(ShardLoader, MemoizedOrderMatchesFreshShuffle) {
  // Regression for the memoized per-epoch order: every batch must equal
  // what a from-scratch shuffle of the shard produces — the cache is a
  // pure optimization, derived from the same (seed, worker, epoch) RNG
  // stream as the pre-memoization implementation.
  SyntheticImageDataset ds(small_image_config());
  const std::size_t worker = 1, num_workers = 2, batch_size = 8;
  const std::uint64_t seed = 5;
  ShardLoader loader(ds, worker, num_workers, batch_size, seed);
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    std::vector<std::size_t> order = shard_indices(64, worker, num_workers);
    util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (worker + 1)) ^
                  (0xbf58476d1ce4e5b9ULL * (epoch + 1)));
    rng.shuffle(order);
    for (std::size_t b = 0; b < loader.batches_per_epoch(); ++b) {
      const std::vector<std::size_t> picked(
          order.begin() + static_cast<std::ptrdiff_t>(b * batch_size),
          order.begin() + static_cast<std::ptrdiff_t>((b + 1) * batch_size));
      const Batch expected = ds.make_batch(picked);
      const Batch got = loader.batch(epoch, b);
      ASSERT_EQ(got.inputs.numel(), expected.inputs.numel());
      for (std::size_t i = 0; i < got.inputs.numel(); ++i) {
        ASSERT_EQ(got.inputs[i], expected.inputs[i])
            << "epoch " << epoch << " batch " << b;
      }
      EXPECT_EQ(got.labels, expected.labels);
    }
  }
}

TEST(ShardLoader, AccessOrderDoesNotChangeBatches) {
  // Interleaving epochs (which evicts the cached order back and forth,
  // exactly what a crash-abandoned job racing a restarted worker does)
  // must produce the same batches as walking epochs sequentially.
  SyntheticImageDataset ds(small_image_config());
  ShardLoader sequential(ds, 0, 2, 8, 5);
  ShardLoader interleaved(ds, 0, 2, 8, 5);
  const std::size_t nb = sequential.batches_per_epoch();

  std::vector<Batch> expected;
  for (std::size_t e = 0; e < 2; ++e) {
    for (std::size_t b = 0; b < nb; ++b) {
      expected.push_back(sequential.batch(e, b));
    }
  }
  for (std::size_t b = 0; b < nb; ++b) {
    // epoch 1 first, then revisit epoch 0, then epoch 1 again.
    const Batch e1 = interleaved.batch(1, b);
    const Batch e0 = interleaved.batch(0, b);
    const Batch e1_again = interleaved.batch(1, b);
    const Batch& want0 = expected[b];
    const Batch& want1 = expected[nb + b];
    for (std::size_t i = 0; i < want0.inputs.numel(); ++i) {
      ASSERT_EQ(e0.inputs[i], want0.inputs[i]) << "batch " << b;
      ASSERT_EQ(e1.inputs[i], want1.inputs[i]) << "batch " << b;
      ASSERT_EQ(e1_again.inputs[i], want1.inputs[i]) << "batch " << b;
    }
    EXPECT_EQ(e0.labels, want0.labels);
    EXPECT_EQ(e1.labels, want1.labels);
  }
}

}  // namespace
}  // namespace osp::data
