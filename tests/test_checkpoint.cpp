// Checkpoint & deterministic-resume suite.
//
// The headline guarantee under test: checkpoint a run at iteration k, kill
// it, resume from the file — and the remainder of the run is bit-identical
// to a run that was never interrupted. "Bit-identical" means every
// RunResult field (times, losses, metrics, curve, fault accounting) and
// every final global parameter compares exactly equal, for every sync
// model in the repo.
//
// Three runs per scenario:
//   A: checkpoint-enabled, uninterrupted (snapshots at iters 5, 10, 15, 20)
//   B: identical, but halts after writing the first checkpoint (models a
//      preempted job)
//   C: resumes from B's file
// and the assertions are A ≡ C. The serde layer itself is property-tested
// (load∘save is byte-stable) and attacked (truncation, bit flips, version
// skew, trailing garbage).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/engine.hpp"
#include "sync/asp.hpp"
#include "sync/bsp.hpp"
#include "sync/compression.hpp"
#include "sync/r2sp.hpp"
#include "sync/sharded_bsp.hpp"
#include "sync/ssp.hpp"
#include "util/check.hpp"
#include "util/serde.hpp"

namespace osp {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

// ---- serde layer ----

TEST(Serde, ScalarAndArrayRoundTrip) {
  util::serde::Writer w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f32(-1.25f);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str("hello serde");
  w.f32_vec(std::vector<float>{1.0f, -0.0f, 2.5e-38f});
  w.f64_vec(std::vector<double>{-7.0, 1e300});
  w.u64_vec(std::vector<std::uint64_t>{1, 2, 3});
  w.size_vec(std::vector<std::size_t>{42});
  w.bool_vec(std::vector<bool>{true, false, true});
  w.bytes(std::vector<std::uint8_t>{9, 8, 7});

  util::serde::Reader r(w.data());
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f32(), -1.25f);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello serde");
  EXPECT_EQ(r.f32_vec(), (std::vector<float>{1.0f, -0.0f, 2.5e-38f}));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{-7.0, 1e300}));
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.size_vec(), (std::vector<std::size_t>{42}));
  EXPECT_EQ(r.bool_vec(), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_TRUE(r.done());
  r.expect_done();
}

TEST(Serde, ReaderRejectsUnderflow) {
  const std::vector<std::uint8_t> three{1, 2, 3};
  util::serde::Reader r(three);
  EXPECT_THROW((void)r.u64(), util::CheckError);
}

TEST(Serde, ReaderRejectsImplausibleArrayCount) {
  util::serde::Writer w;
  w.u64(0xFFFFFFFFFFFFull);  // claims ~2.8e14 floats, none present
  util::serde::Reader r(w.data());
  EXPECT_THROW((void)r.f32_vec(), util::CheckError);
}

TEST(Serde, ReaderRejectsTrailingGarbage) {
  util::serde::Writer w;
  w.u32(5);
  w.u8(0);
  util::serde::Reader r(w.data());
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW(r.expect_done(), util::CheckError);
}

class SerdeFile : public ::testing::Test {
 protected:
  SerdeFile() : file_(temp_path("osp_serde_file.bin")) {
    util::serde::Writer w;
    w.str("payload under test");
    w.f64_vec(std::vector<double>{1.5, -2.5, 3.5});
    util::serde::write_file(file_.path, "TESTMGC1", 3, w.data());
  }

  TempFile file_;
};

TEST_F(SerdeFile, RoundTrips) {
  const auto f = util::serde::read_file(file_.path, "TESTMGC1", 3);
  EXPECT_EQ(f.version, 3u);
  util::serde::Reader r(f.payload);
  EXPECT_EQ(r.str(), "payload under test");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, 3.5}));
  r.expect_done();
}

TEST_F(SerdeFile, RejectsWrongMagic) {
  EXPECT_THROW((void)util::serde::read_file(file_.path, "OTHERMAG", 3),
               util::CheckError);
}

TEST_F(SerdeFile, RejectsNewerVersion) {
  EXPECT_THROW((void)util::serde::read_file(file_.path, "TESTMGC1", 2),
               util::CheckError);
}

TEST_F(SerdeFile, RejectsTruncation) {
  const auto size = std::filesystem::file_size(file_.path);
  std::filesystem::resize_file(file_.path, size - 5);
  EXPECT_THROW((void)util::serde::read_file(file_.path, "TESTMGC1", 3),
               util::CheckError);
}

TEST_F(SerdeFile, RejectsTrailingBytes) {
  std::ofstream out(file_.path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  EXPECT_THROW((void)util::serde::read_file(file_.path, "TESTMGC1", 3),
               util::CheckError);
}

TEST_F(SerdeFile, RejectsBitFlip) {
  // Flip one payload bit; the CRC must catch it.
  std::fstream io(file_.path,
                  std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(8 + 12 + 3);  // inside the payload
  char byte = 0;
  io.seekg(8 + 12 + 3);
  io.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  io.seekp(8 + 12 + 3);
  io.write(&byte, 1);
  io.close();
  EXPECT_THROW((void)util::serde::read_file(file_.path, "TESTMGC1", 3),
               util::CheckError);
}

TEST(Serde, MissingFileThrows) {
  EXPECT_THROW(
      (void)util::serde::read_file(temp_path("osp_no_such_serde.bin"),
                                   "TESTMGC1", 1),
      util::CheckError);
}

// ---- run checkpoints ----

using SyncFactory = std::function<std::unique_ptr<runtime::SyncModel>()>;

runtime::EngineConfig golden_config() {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;  // tiny_mlp: 8 batches/epoch/worker -> 24 iterations
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  return cfg;
}

struct RunOutput {
  runtime::RunResult result;
  std::vector<float> params;
};

RunOutput run_model(const SyncFactory& make, const runtime::EngineConfig& cfg) {
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  auto sync = make();
  runtime::Engine engine(spec, cfg, *sync);
  RunOutput out;
  out.result = engine.run();
  const auto params = engine.global_params();
  out.params.assign(params.begin(), params.end());
  return out;
}

/// Every RunResult field must match exactly — doubles included: resumed
/// runs are bit-identical, not approximately equal.
void expect_same_result(const runtime::RunResult& a,
                        const runtime::RunResult& c) {
  EXPECT_EQ(a.sync_name, c.sync_name);
  EXPECT_EQ(a.workload_name, c.workload_name);
  EXPECT_EQ(a.total_time_s, c.total_time_s);
  EXPECT_EQ(a.total_samples, c.total_samples);
  EXPECT_EQ(a.throughput, c.throughput);
  EXPECT_EQ(a.best_metric, c.best_metric);
  EXPECT_EQ(a.final_loss, c.final_loss);
  EXPECT_EQ(a.mean_bct_s, c.mean_bct_s);
  EXPECT_EQ(a.mean_bst_s, c.mean_bst_s);
  EXPECT_EQ(a.steady_bst_s, c.steady_bst_s);
  EXPECT_EQ(a.p99_bst_s, c.p99_bst_s);
  EXPECT_EQ(a.steady_throughput, c.steady_throughput);
  EXPECT_EQ(a.iters_to_target.has_value(), c.iters_to_target.has_value());
  if (a.iters_to_target && c.iters_to_target) {
    EXPECT_EQ(*a.iters_to_target, *c.iters_to_target);
  }
  EXPECT_EQ(a.time_to_target_s.has_value(), c.time_to_target_s.has_value());
  if (a.time_to_target_s && c.time_to_target_s) {
    EXPECT_EQ(*a.time_to_target_s, *c.time_to_target_s);
  }
  ASSERT_EQ(a.curve.size(), c.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time_s, c.curve[i].time_s);
    EXPECT_EQ(a.curve[i].samples, c.curve[i].samples);
    EXPECT_EQ(a.curve[i].metric, c.curve[i].metric);
    EXPECT_EQ(a.curve[i].loss, c.curve[i].loss);
  }
  EXPECT_EQ(a.epoch_losses, c.epoch_losses);
  EXPECT_EQ(a.faults.worker_crashes, c.faults.worker_crashes);
  EXPECT_EQ(a.faults.worker_restarts, c.faults.worker_restarts);
  EXPECT_EQ(a.faults.worker_pauses, c.faults.worker_pauses);
  EXPECT_EQ(a.faults.flows_cancelled, c.faults.flows_cancelled);
  EXPECT_EQ(a.faults.messages_dropped, c.faults.messages_dropped);
  EXPECT_EQ(a.faults.messages_delayed, c.faults.messages_delayed);
  EXPECT_EQ(a.faults.timed_out_rounds, c.faults.timed_out_rounds);
  EXPECT_EQ(a.faults.ics_rounds_abandoned, c.faults.ics_rounds_abandoned);
  EXPECT_EQ(a.faults.catch_up_pulls, c.faults.catch_up_pulls);
  EXPECT_EQ(a.faults.ps_crashes, c.faults.ps_crashes);
  EXPECT_EQ(a.faults.ps_restarts, c.faults.ps_restarts);
  EXPECT_EQ(a.faults.ps_promotions, c.faults.ps_promotions);
  EXPECT_EQ(a.faults.replica_catchup_bytes, c.faults.replica_catchup_bytes);
  EXPECT_EQ(a.faults.worker_downtime_s, c.faults.worker_downtime_s);
  EXPECT_EQ(a.checkpoints_taken, c.checkpoints_taken);
  EXPECT_EQ(a.halted_at_checkpoint, c.halted_at_checkpoint);
}

/// Serde property: deserialize(file) → serialize must reproduce the file's
/// payload byte for byte.
void expect_byte_stable(const std::string& path) {
  const auto file = util::serde::read_file(path, "OSPRUN01", 2);
  util::serde::Reader r(file.payload);
  const runtime::RunCheckpoint ckpt = runtime::RunCheckpoint::deserialize(r);
  r.expect_done();
  util::serde::Writer w;
  ckpt.serialize(w);
  EXPECT_EQ(w.take(), file.payload);
}

/// The A/B/C scenario described in the file header.
void expect_resume_equivalent(const SyncFactory& make,
                              const runtime::EngineConfig& base,
                              const std::string& tag) {
  TempFile file(temp_path("osp_resume_" + tag + ".bin"));

  runtime::EngineConfig cfg_a = base;
  cfg_a.checkpoint.every_iters = 5;
  const RunOutput a = run_model(make, cfg_a);
  EXPECT_EQ(a.result.checkpoints_taken, 4u) << tag;
  EXPECT_FALSE(a.result.halted_at_checkpoint);

  runtime::EngineConfig cfg_b = base;
  cfg_b.checkpoint.every_iters = 5;
  cfg_b.checkpoint.path = file.path;
  cfg_b.checkpoint.halt_after_checkpoint = true;
  const RunOutput b = run_model(make, cfg_b);
  EXPECT_TRUE(b.result.halted_at_checkpoint);
  EXPECT_EQ(b.result.checkpoints_taken, 1u) << tag;
  expect_byte_stable(file.path);

  runtime::EngineConfig cfg_c = base;
  cfg_c.checkpoint.every_iters = 5;
  cfg_c.checkpoint.resume_from = file.path;
  const RunOutput c = run_model(make, cfg_c);

  expect_same_result(a.result, c.result);
  ASSERT_EQ(a.params.size(), c.params.size());
  EXPECT_EQ(a.params, c.params) << tag << ": resumed params diverged";
}

TEST(ResumeEquivalence, Bsp) {
  expect_resume_equivalent(
      [] { return std::make_unique<sync::BspSync>(); }, golden_config(),
      "bsp");
}

TEST(ResumeEquivalence, BspWithMomentum) {
  runtime::EngineConfig cfg = golden_config();
  cfg.momentum = 0.9;  // exercises optimizer velocity serialization
  expect_resume_equivalent(
      [] { return std::make_unique<sync::BspSync>(); }, cfg, "bsp_momentum");
}

TEST(ResumeEquivalence, Asp) {
  expect_resume_equivalent(
      [] { return std::make_unique<sync::AspSync>(); }, golden_config(),
      "asp");
}

TEST(ResumeEquivalence, Ssp) {
  expect_resume_equivalent(
      [] { return std::make_unique<sync::SspSync>(2); }, golden_config(),
      "ssp");
}

TEST(ResumeEquivalence, R2sp) {
  expect_resume_equivalent(
      [] { return std::make_unique<sync::R2spSync>(); }, golden_config(),
      "r2sp");
}

TEST(ResumeEquivalence, ShardedBsp) {
  runtime::EngineConfig cfg = golden_config();
  cfg.cluster.num_ps = 2;
  expect_resume_equivalent(
      [] { return std::make_unique<sync::ShardedBspSync>(); }, cfg,
      "sharded_bsp");
}

TEST(ResumeEquivalence, OspDefault) {
  expect_resume_equivalent(
      [] { return std::make_unique<core::OspSync>(); }, golden_config(),
      "osp");
}

TEST(ResumeEquivalence, OspFixedBudget) {
  // A fixed ICS budget keeps overlapped ICS rounds in flight around the
  // drain barrier, so the snapshot has real RS/ICS state to drain.
  expect_resume_equivalent(
      [] {
        core::OspOptions opt;
        opt.fixed_budget_fraction = 0.5;
        return std::make_unique<core::OspSync>(opt);
      },
      golden_config(), "osp_fixed");
}

TEST(ResumeEquivalence, OspEmaLgp) {
  expect_resume_equivalent(
      [] {
        core::OspOptions opt;
        opt.use_ema_lgp = true;
        opt.fixed_budget_fraction = 0.5;
        return std::make_unique<core::OspSync>(opt);
      },
      golden_config(), "osp_ema");
}

TEST(ResumeEquivalence, CompressedBspWithErrorFeedback) {
  expect_resume_equivalent(
      [] {
        return std::make_unique<sync::CompressedBspSync>(
            sync::CompressionMode::TopK, 0.25, /*seed=*/99,
            /*error_feedback=*/true);
      },
      golden_config(), "compressed_ef");
}

// ---- serde round-trip across randomized configs (property test) ----

TEST(CheckpointProperty, ByteStableAcrossRandomizedConfigs) {
  struct Case {
    std::size_t workers;
    std::uint64_t seed;
    double jitter;
    std::size_t every;
    double momentum;
  };
  const Case cases[] = {
      {2, 7, 0.0, 3, 0.0},
      {3, 1234, 0.25, 4, 0.9},
      {4, 42, 0.1, 6, 0.5},
  };
  const SyncFactory factories[] = {
      [] { return std::make_unique<sync::BspSync>(); },
      [] {
        core::OspOptions opt;
        opt.fixed_budget_fraction = 0.5;
        return std::make_unique<core::OspSync>(opt);
      },
  };
  std::size_t idx = 0;
  for (const Case& cs : cases) {
    for (const SyncFactory& make : factories) {
      runtime::EngineConfig cfg;
      cfg.num_workers = cs.workers;
      cfg.max_epochs = 3;
      cfg.seed = cs.seed;
      cfg.straggler_jitter = cs.jitter;
      cfg.momentum = cs.momentum;
      TempFile file(
          temp_path("osp_prop_" + std::to_string(idx++) + ".bin"));
      cfg.checkpoint.every_iters = cs.every;
      cfg.checkpoint.path = file.path;
      cfg.checkpoint.halt_after_checkpoint = true;
      const RunOutput halted = run_model(make, cfg);
      ASSERT_TRUE(halted.result.halted_at_checkpoint);
      expect_byte_stable(file.path);
    }
  }
}

// ---- checkpointing leaves a run's final parameters untouched ----

TEST(CheckpointTransparency, BarrierModelsReachIdenticalParams) {
  // The drain barrier re-synchronizes the cluster in *time*, but for
  // barrier-per-iteration models it cannot change any gradient or update:
  // a plain run and a checkpoint-enabled run end at identical parameters
  // (timing metrics legitimately differ — the drain holds fast workers).
  const SyncFactory factories[] = {
      [] { return std::make_unique<sync::BspSync>(); },
      [] { return std::make_unique<sync::ShardedBspSync>(); },
  };
  for (const SyncFactory& make : factories) {
    const RunOutput plain = run_model(make, golden_config());
    runtime::EngineConfig cfg = golden_config();
    cfg.checkpoint.every_iters = 5;
    const RunOutput ckpt = run_model(make, cfg);
    EXPECT_EQ(plain.result.checkpoints_taken, 0u);
    EXPECT_EQ(ckpt.result.checkpoints_taken, 4u);
    EXPECT_EQ(plain.params, ckpt.params);
    EXPECT_EQ(plain.result.total_samples, ckpt.result.total_samples);
  }
}

// ---- guard rails ----

TEST(CheckpointGuards, RefusesMismatchedResume) {
  TempFile file(temp_path("osp_resume_mismatch.bin"));
  runtime::EngineConfig cfg = golden_config();
  cfg.checkpoint.every_iters = 5;
  cfg.checkpoint.path = file.path;
  cfg.checkpoint.halt_after_checkpoint = true;
  (void)run_model([] { return std::make_unique<sync::BspSync>(); }, cfg);

  // Wrong sync model.
  {
    runtime::EngineConfig bad = golden_config();
    bad.checkpoint.resume_from = file.path;
    const runtime::WorkloadSpec spec = models::tiny_mlp();
    sync::AspSync asp;
    runtime::Engine engine(spec, bad, asp);
    EXPECT_THROW((void)engine.run(), util::CheckError);
  }
  // Wrong worker count.
  {
    runtime::EngineConfig bad = golden_config();
    bad.num_workers = 3;
    bad.checkpoint.resume_from = file.path;
    const runtime::WorkloadSpec spec = models::tiny_mlp();
    sync::BspSync bsp;
    runtime::Engine engine(spec, bad, bsp);
    EXPECT_THROW((void)engine.run(), util::CheckError);
  }
  // Corrupted file.
  {
    std::fstream io(file.path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(8 + 12 + 100);
    char byte = 0;
    io.seekg(8 + 12 + 100);
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    io.seekp(8 + 12 + 100);
    io.write(&byte, 1);
    io.close();
    runtime::EngineConfig bad = golden_config();
    bad.checkpoint.resume_from = file.path;
    const runtime::WorkloadSpec spec = models::tiny_mlp();
    sync::BspSync bsp;
    runtime::Engine engine(spec, bad, bsp);
    EXPECT_THROW((void)engine.run(), util::CheckError);
  }
}

TEST(CheckpointGuards, DisabledPolicyTakesNoCheckpoints) {
  const RunOutput out =
      run_model([] { return std::make_unique<sync::BspSync>(); },
                golden_config());
  EXPECT_EQ(out.result.checkpoints_taken, 0u);
  EXPECT_FALSE(out.result.halted_at_checkpoint);
}

}  // namespace
}  // namespace osp
