// Async worker-math pipeline suite.
//
// The headline guarantee under test: overlapping workers' real FP+BP on
// the thread pool (runtime/worker_math.hpp) changes *wall-clock only*.
// Every RunResult field and every final global parameter is bit-identical
//   - across OSP_NUM_THREADS (pools of 1, 2, and 8 threads),
//   - between the async pipeline and the serial reference path,
//   - under fault injection (crashes cancel in-flight jobs) and across a
//     checkpoint/resume boundary — even when the halted and resumed runs
//     execute under *different* thread counts.
// A stress scenario combines checkpoint parking and crash/restart cycles
// so jobs are abandoned mid-flight while the drain barrier is active.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/osp_sync.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "sync/bsp.hpp"
#include "sync/compression.hpp"
#include "util/thread_pool.hpp"

namespace osp {
namespace {

using SyncFactory = std::function<std::unique_ptr<runtime::SyncModel>()>;

runtime::EngineConfig golden_config() {
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;  // tiny_mlp: 8 batches/epoch/worker -> 24 iterations
  cfg.seed = 42;
  cfg.straggler_jitter = 0.1;
  return cfg;
}

SyncFactory bsp_factory() {
  return [] { return std::make_unique<sync::BspSync>(); };
}

SyncFactory osp_factory() {
  return [] {
    // A fixed ICS budget keeps overlapped ICS rounds in flight, so the
    // completion events interleave with compute completions — the
    // adversarial case for event-order side effects.
    core::OspOptions opt;
    opt.fixed_budget_fraction = 0.5;
    return std::make_unique<core::OspSync>(opt);
  };
}

SyncFactory compressed_ef_factory() {
  return [] {
    return std::make_unique<sync::CompressedBspSync>(
        sync::CompressionMode::TopK, 0.25, /*seed=*/99,
        /*error_feedback=*/true);
  };
}

struct RunOutput {
  runtime::RunResult result;
  std::vector<float> params;
};

/// One full run under a pool of exactly `threads` threads. The pool is
/// declared before the engine: the engine pins ThreadPool::global() at
/// construction, so it must not outlive the override.
RunOutput run_with_threads(const SyncFactory& make,
                           const runtime::EngineConfig& cfg,
                           std::size_t threads) {
  util::ThreadPool pool(threads);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  auto sync = make();
  runtime::Engine engine(spec, cfg, *sync);
  RunOutput out;
  out.result = engine.run();
  const auto params = engine.global_params();
  out.params.assign(params.begin(), params.end());
  return out;
}

/// Every RunResult field must match exactly — doubles included: the
/// pipeline is bit-identical, not approximately equal.
void expect_same_result(const runtime::RunResult& a,
                        const runtime::RunResult& c) {
  EXPECT_EQ(a.sync_name, c.sync_name);
  EXPECT_EQ(a.workload_name, c.workload_name);
  EXPECT_EQ(a.total_time_s, c.total_time_s);
  EXPECT_EQ(a.total_samples, c.total_samples);
  EXPECT_EQ(a.throughput, c.throughput);
  EXPECT_EQ(a.best_metric, c.best_metric);
  EXPECT_EQ(a.final_loss, c.final_loss);
  EXPECT_EQ(a.mean_bct_s, c.mean_bct_s);
  EXPECT_EQ(a.mean_bst_s, c.mean_bst_s);
  EXPECT_EQ(a.steady_bst_s, c.steady_bst_s);
  EXPECT_EQ(a.p99_bst_s, c.p99_bst_s);
  EXPECT_EQ(a.steady_throughput, c.steady_throughput);
  EXPECT_EQ(a.iters_to_target.has_value(), c.iters_to_target.has_value());
  if (a.iters_to_target && c.iters_to_target) {
    EXPECT_EQ(*a.iters_to_target, *c.iters_to_target);
  }
  EXPECT_EQ(a.time_to_target_s.has_value(), c.time_to_target_s.has_value());
  if (a.time_to_target_s && c.time_to_target_s) {
    EXPECT_EQ(*a.time_to_target_s, *c.time_to_target_s);
  }
  ASSERT_EQ(a.curve.size(), c.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time_s, c.curve[i].time_s);
    EXPECT_EQ(a.curve[i].samples, c.curve[i].samples);
    EXPECT_EQ(a.curve[i].metric, c.curve[i].metric);
    EXPECT_EQ(a.curve[i].loss, c.curve[i].loss);
  }
  EXPECT_EQ(a.epoch_losses, c.epoch_losses);
  EXPECT_EQ(a.faults.worker_crashes, c.faults.worker_crashes);
  EXPECT_EQ(a.faults.worker_restarts, c.faults.worker_restarts);
  EXPECT_EQ(a.faults.worker_pauses, c.faults.worker_pauses);
  EXPECT_EQ(a.faults.flows_cancelled, c.faults.flows_cancelled);
  EXPECT_EQ(a.faults.messages_dropped, c.faults.messages_dropped);
  EXPECT_EQ(a.faults.messages_delayed, c.faults.messages_delayed);
  EXPECT_EQ(a.faults.timed_out_rounds, c.faults.timed_out_rounds);
  EXPECT_EQ(a.faults.ics_rounds_abandoned, c.faults.ics_rounds_abandoned);
  EXPECT_EQ(a.faults.catch_up_pulls, c.faults.catch_up_pulls);
  EXPECT_EQ(a.faults.worker_downtime_s, c.faults.worker_downtime_s);
  EXPECT_EQ(a.checkpoints_taken, c.checkpoints_taken);
  EXPECT_EQ(a.halted_at_checkpoint, c.halted_at_checkpoint);
}

/// Run the same (sync, config) under 1, 2, and 8 pool threads; every run
/// must be bitwise identical to the 1-thread reference.
void expect_thread_count_invariant(const SyncFactory& make,
                                   const runtime::EngineConfig& cfg,
                                   const std::string& tag) {
  const RunOutput ref = run_with_threads(make, cfg, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const RunOutput got = run_with_threads(make, cfg, threads);
    SCOPED_TRACE(tag + " @ " + std::to_string(threads) + " threads");
    expect_same_result(ref.result, got.result);
    ASSERT_EQ(ref.params.size(), got.params.size());
    EXPECT_EQ(ref.params, got.params) << tag << ": params diverged";
  }
}

// ---- plain runs ----

TEST(AsyncMathBitIdentity, Bsp) {
  expect_thread_count_invariant(bsp_factory(), golden_config(), "bsp");
}

TEST(AsyncMathBitIdentity, OspFixedBudget) {
  expect_thread_count_invariant(osp_factory(), golden_config(), "osp");
}

TEST(AsyncMathBitIdentity, CompressedBspWithErrorFeedback) {
  expect_thread_count_invariant(compressed_ef_factory(), golden_config(),
                                "compressed_ef");
}

// ---- faulted runs: crashes cancel in-flight jobs ----

runtime::EngineConfig faulted_config() {
  runtime::EngineConfig cfg = golden_config();
  // Worker 1 crashes mid-iteration (abandoning its in-flight math job) and
  // restarts; worker 2's compute gets stretched by a pause.
  cfg.faults.crash_worker(0.5, 1, 2.0).pause_worker(1.0, 2, 1.5);
  return cfg;
}

TEST(AsyncMathBitIdentity, BspFaulted) {
  expect_thread_count_invariant(bsp_factory(), faulted_config(),
                                "bsp_faulted");
}

TEST(AsyncMathBitIdentity, OspFaulted) {
  expect_thread_count_invariant(osp_factory(), faulted_config(),
                                "osp_faulted");
}

// ---- checkpoint/resume across *different* thread counts ----

TEST(AsyncMathBitIdentity, ResumeAcrossThreadCounts) {
  // A: uninterrupted run under 8 threads. B: identical config but halts at
  // the first checkpoint, under 2 threads. C: resumes B's file under 1
  // thread. A ≡ C proves the checkpoint file carries no trace of the
  // execution schedule — the remainder of a run is bit-identical no matter
  // which thread count produced the snapshot or consumes it.
  const std::string path = ::testing::TempDir() + "osp_async_resume.bin";

  runtime::EngineConfig cfg_a = golden_config();
  cfg_a.checkpoint.every_iters = 5;
  const RunOutput a = run_with_threads(osp_factory(), cfg_a, 8);
  EXPECT_EQ(a.result.checkpoints_taken, 4u);

  runtime::EngineConfig cfg_b = golden_config();
  cfg_b.checkpoint.every_iters = 5;
  cfg_b.checkpoint.path = path;
  cfg_b.checkpoint.halt_after_checkpoint = true;
  const RunOutput b = run_with_threads(osp_factory(), cfg_b, 2);
  ASSERT_TRUE(b.result.halted_at_checkpoint);

  runtime::EngineConfig cfg_c = golden_config();
  cfg_c.checkpoint.every_iters = 5;
  cfg_c.checkpoint.resume_from = path;
  const RunOutput c = run_with_threads(osp_factory(), cfg_c, 1);

  expect_same_result(a.result, c.result);
  ASSERT_EQ(a.params.size(), c.params.size());
  EXPECT_EQ(a.params, c.params) << "resumed params diverged";
  std::remove(path.c_str());
}

// ---- async vs. serial reference path ----

TEST(AsyncMathBitIdentity, AsyncMatchesSerialReference) {
  runtime::EngineConfig serial_cfg = golden_config();
  serial_cfg.async_worker_math = false;
  const RunOutput serial = run_with_threads(osp_factory(), serial_cfg, 4);
  const RunOutput async = run_with_threads(osp_factory(), golden_config(), 4);
  expect_same_result(serial.result, async.result);
  EXPECT_EQ(serial.params, async.params);
}

// ---- stress: parking + crashes with jobs in flight ----

TEST(AsyncMathStress, ParkedAndCrashedWorkersWithInFlightJobs) {
  // Eight workers, a checkpoint drain every 3 iterations (so workers park
  // with neighbours' jobs still in flight), two crash/restart cycles, one
  // permanent crash, and overlapping pauses — under OSP with live ICS
  // rounds. The 8-thread run must match the 1-thread reference bit for
  // bit, and every abandoned job must be reclaimed without touching
  // engine state (verified implicitly: any stray side effect changes
  // RunResult; any leaked job trips ASan/TSan in the sanitizer lanes).
  runtime::EngineConfig cfg;
  cfg.num_workers = 8;
  cfg.max_epochs = 3;  // tiny_mlp @ 8 workers: 4 batches/epoch/worker
  cfg.seed = 1234;
  cfg.straggler_jitter = 0.2;
  cfg.checkpoint.every_iters = 3;
  cfg.faults.crash_worker(0.4, 1, 1.0)
      .crash_worker(0.9, 3, 2.0)
      .crash_worker(1.3, 5, -1.0)  // never restarts
      .pause_worker(0.6, 2, 1.0)
      .pause_worker(1.1, 6, 0.8);
  expect_thread_count_invariant(osp_factory(), cfg, "stress");
  expect_thread_count_invariant(bsp_factory(), cfg, "stress_bsp");
}

// ---- pipeline observability ----

TEST(AsyncMathPipeline, SerialFallbackOnSingleThreadPool) {
  // A 1-thread pool cannot overlap anything; the engine falls back to the
  // serial path (and builds exactly one replica once it runs).
  util::ThreadPool pool(1);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  runtime::EngineConfig cfg = golden_config();
  cfg.max_epochs = 1;
  runtime::Engine engine(spec, cfg, sync);
  EXPECT_FALSE(engine.async_math());
  (void)engine.run();
  EXPECT_EQ(engine.math_replicas(), 1u);
}

TEST(AsyncMathPipeline, ReplicaPoolBoundedByThreads) {
  util::ThreadPool pool(4);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  runtime::EngineConfig cfg = golden_config();
  cfg.max_epochs = 1;
  runtime::Engine engine(spec, cfg, sync);
  EXPECT_TRUE(engine.async_math());
  (void)engine.run();
  EXPECT_GE(engine.math_replicas(), 1u);
  EXPECT_LE(engine.math_replicas(), pool.size() + 1);
}

TEST(AsyncMathPipeline, ConfigFlagDisablesOverlap) {
  util::ThreadPool pool(4);
  util::ThreadPool::ScopedGlobal guard(pool);
  const runtime::WorkloadSpec spec = models::tiny_mlp();
  sync::BspSync sync;
  runtime::EngineConfig cfg = golden_config();
  cfg.async_worker_math = false;
  runtime::Engine engine(spec, cfg, sync);
  EXPECT_FALSE(engine.async_math());
}

}  // namespace
}  // namespace osp
