// Tests for the observability layer: trace export precision, the Chrome
// JSON number format, RS/ICS span structure, per-round sync telemetry, the
// counter tracks, and the JSON read-back path the run inspector uses.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/osp_sync.hpp"
#include "core/tuning.hpp"
#include "models/zoo.hpp"
#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/trace.hpp"
#include "sync/bsp.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace osp {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- export precision ----------------------------------------------------

TEST(TraceExport, CsvRoundTripsDoublesLateInTraining) {
  // A span ~28 hours into simulated time: sub-microsecond offsets at t≈1e5 s
  // need all 17 significant digits to survive the text round-trip.
  const double begin = 100000.12345678912;
  const double end = 100000.98765432198;
  runtime::TraceRecorder trace;
  trace.add({begin, end, 1, 2, runtime::TracePhase::kCompute});
  TempFile file(temp_path("osp_obs_precision.csv"));
  trace.write_csv(file.path);

  std::ifstream in(file.path);
  std::string header, line;
  std::getline(in, header);
  std::getline(in, line);
  // worker,iteration,phase,begin_s,end_s
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string f;
  while (std::getline(ss, f, ',')) fields.push_back(f);
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(std::strtod(fields[3].c_str(), nullptr), begin);  // exact
  EXPECT_EQ(std::strtod(fields[4].c_str(), nullptr), end);
}

TEST(TraceExport, ChromeJsonHasNoScientificNotation) {
  // ts = 1e5 s = 1e11 µs would print as 1e+11 under default formatting;
  // some trace viewers reject that. Assert no e/E outside quoted strings.
  runtime::TraceRecorder trace;
  trace.add({100000.1234567, 100000.2234567, 0, 12345,
             runtime::TracePhase::kCompute});
  trace.add({100000.2234567, 100000.2534567, 0, 12345,
             runtime::TracePhase::kRs});
  trace.add({100000.26, 100000.29, 0, 12345, runtime::TracePhase::kIcs});
  trace.add_flow({100000.25, 100000.26, "worker0", "ps0", 2.5e8, true});
  trace.add_counter(100000.27, "in_flight_bytes", 1.25e9);
  TempFile file(temp_path("osp_obs_noexp.json"));
  trace.write_chrome_json(file.path);

  const std::string content = slurp(file.path);
  bool in_string = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    ASSERT_NE(c, 'e') << "scientific notation at offset " << i;
    ASSERT_NE(c, 'E') << "scientific notation at offset " << i;
  }

  // And the artifact is well-formed for the read-back path.
  const util::JsonValue doc = util::json_parse(content);
  ASSERT_EQ(doc.kind(), util::JsonValue::Kind::kArray);
  bool found_span = false;
  for (const util::JsonValue& ev : doc.items()) {
    const util::JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const util::JsonValue* pid = ev.find("pid");
    if (pid->as_number() != 0.0) continue;
    found_span = true;
    // 100000.1234567 s in µs, recovered to sub-µs precision.
    const double ts = ev.find("ts")->as_number();
    if (ev.find("args")->find("iteration") != nullptr) {
      EXPECT_NEAR(ts / 1e6, 100000.1234567, 1e-7);
      break;
    }
  }
  EXPECT_TRUE(found_span);
}

// ---- RS/ICS span structure ----------------------------------------------

double overlap_with_compute(const runtime::TraceRecorder& trace) {
  using runtime::TracePhase;
  double overlapped = 0.0;
  for (const auto& s : trace.spans()) {
    if (s.phase != TracePhase::kIcs) continue;
    for (const auto& c : trace.spans()) {
      if (c.phase != TracePhase::kCompute || c.worker != s.worker) continue;
      const double lo = std::max(s.begin_s, c.begin_s);
      const double hi = std::min(s.end_s, c.end_s);
      if (hi > lo) overlapped += hi - lo;
    }
  }
  return overlapped;
}

TEST(ObservabilityIntegration, OspTraceSeparatesRsFromOverlappingIcs) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 3;
  cfg.seed = 21;
  cfg.record_trace = true;
  cfg.record_telemetry = true;

  core::OspOptions opt;
  opt.fixed_budget_fraction = 0.5;  // ICS carries bytes from round 1
  core::OspSync osp(opt);
  runtime::Engine engine(spec, cfg, osp);
  const runtime::RunResult r = engine.run();
  const auto& trace = engine.trace();

  std::size_t rs = 0, ics = 0, plain_sync = 0;
  for (const auto& s : trace.spans()) {
    if (s.phase == runtime::TracePhase::kRs) ++rs;
    if (s.phase == runtime::TracePhase::kIcs) ++ics;
    if (s.phase == runtime::TracePhase::kSync) ++plain_sync;
  }
  EXPECT_GT(rs, 0u);          // stage 1: blocking RS, own phase
  EXPECT_GT(ics, 0u);         // stage 2: ICS spans exist
  EXPECT_EQ(plain_sync, 0u);  // OSP never emits the generic sync phase

  // The point of ICS: its spans overlap the same worker's next-iteration
  // compute.
  EXPECT_GT(overlap_with_compute(trace), 0.0);

  // Network flow spans were captured alongside.
  ASSERT_FALSE(trace.flows().empty());
  for (const auto& f : trace.flows()) {
    EXPECT_LE(f.begin_s, f.end_s);
    EXPECT_GT(f.bytes, 0.0);
    EXPECT_FALSE(f.src.empty());
    EXPECT_FALSE(f.dst.empty());
  }

  // Counter tracks: budget, in-flight bytes, alive workers.
  bool saw_budget = false, saw_inflight = false, saw_alive = false;
  for (const auto& c : trace.counters()) {
    if (c.name == "ics_budget_bytes") saw_budget = true;
    if (c.name == "in_flight_bytes") saw_inflight = true;
    if (c.name == "alive_workers") saw_alive = true;
  }
  EXPECT_TRUE(saw_budget);
  EXPECT_TRUE(saw_inflight);
  EXPECT_TRUE(saw_alive);

  // Telemetry: every RS close produced a record whose GIB split covers the
  // whole model and whose ICS bytes respect the budget.
  ASSERT_FALSE(r.rounds.empty());
  const double budget = osp.current_ics_budget();
  EXPECT_GT(budget, 0.0);
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.gib_important + rec.gib_unimportant, engine.num_blocks());
    EXPECT_NEAR(rec.important_bytes + rec.unimportant_bytes,
                engine.model_bytes(), 1e-6);
    EXPECT_LE(rec.unimportant_bytes, rec.ics_budget_bytes + 1e-9);
    EXPECT_EQ(rec.ics_budget_bytes, budget);  // fixed-budget ablation
    EXPECT_GT(rec.contributors, 0u);
  }
}

TEST(ObservabilityIntegration, BspTraceHasNoIcsAndZeroOverlap) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 2;
  cfg.seed = 21;
  cfg.record_trace = true;
  cfg.record_telemetry = true;

  sync::BspSync bsp;
  runtime::Engine engine(spec, cfg, bsp);
  const runtime::RunResult r = engine.run();

  for (const auto& s : engine.trace().spans()) {
    EXPECT_NE(s.phase, runtime::TracePhase::kIcs);
    EXPECT_NE(s.phase, runtime::TracePhase::kRs);
  }
  EXPECT_EQ(overlap_with_compute(engine.trace()), 0.0);

  // BSP still reports rounds: everything important, nothing on the ICS.
  ASSERT_FALSE(r.rounds.empty());
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.gib_unimportant, 0u);
    EXPECT_EQ(rec.unimportant_bytes, 0.0);
    EXPECT_EQ(rec.ics_budget_bytes, 0.0);
    EXPECT_EQ(rec.contributors, 4u);
  }
}

TEST(ObservabilityIntegration, TelemetryOffByDefaultAndReadOnly) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 2;
  cfg.max_epochs = 2;
  cfg.seed = 5;

  auto run_with = [&](bool telemetry) {
    cfg.record_telemetry = telemetry;
    core::OspSync osp;
    runtime::Engine engine(spec, cfg, osp);
    return engine.run();
  };
  const runtime::RunResult off = run_with(false);
  const runtime::RunResult on = run_with(true);
  EXPECT_TRUE(off.rounds.empty());
  EXPECT_FALSE(on.rounds.empty());
  // Observation must not perturb the training numerics.
  ASSERT_EQ(off.epoch_losses.size(), on.epoch_losses.size());
  for (std::size_t i = 0; i < off.epoch_losses.size(); ++i) {
    EXPECT_EQ(off.epoch_losses[i], on.epoch_losses[i]);
  }
}

TEST(ObservabilityIntegration, BudgetTrajectoryMatchesTunerBitForBit) {
  const auto spec = models::tiny_mlp();
  runtime::EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.max_epochs = 5;
  cfg.seed = 13;
  cfg.record_telemetry = true;

  core::OspSync osp;  // Algorithm 1 schedule
  runtime::Engine engine(spec, cfg, osp);
  const runtime::RunResult r = engine.run();
  ASSERT_FALSE(r.rounds.empty());

  // Replay Algorithm 1 from the recorded epoch losses with the same U_max;
  // the budgets stamped on the telemetry must be exactly these values, in
  // order (rounds before the first epoch close run at budget 0).
  std::vector<double> allowed = {0.0};
  core::SguTuner tuner(osp.u_max());
  for (std::size_t e = 0; e < r.epoch_losses.size(); ++e) {
    allowed.push_back(tuner.on_epoch_loss(e + 1, r.epoch_losses[e]));
  }
  std::size_t cursor = 0;
  for (const auto& rec : r.rounds) {
    while (cursor < allowed.size() && allowed[cursor] != rec.ics_budget_bytes) {
      ++cursor;
    }
    ASSERT_LT(cursor, allowed.size())
        << "round " << rec.round << " budget " << rec.ics_budget_bytes
        << " is not a tuner decision";
  }
  // The ramp actually engaged at some point in 5 epochs.
  EXPECT_GT(r.rounds.back().ics_budget_bytes, 0.0);
}

// ---- JSON read-back + JSONL ---------------------------------------------

TEST(Json, ParserHandlesTheArtifactSubset) {
  const util::JsonValue v = util::json_parse(
      R"({"name": "worker 0 \"ics\"", "n": -12.5, "big": 1.25e9,)"
      R"( "list": [1, 2, 3], "flag": true, "none": null, "empty": {}})");
  EXPECT_EQ(v.find("name")->as_string(), "worker 0 \"ics\"");
  EXPECT_EQ(v.find("n")->as_number(), -12.5);
  EXPECT_EQ(v.find("big")->as_number(), 1.25e9);
  ASSERT_EQ(v.find("list")->items().size(), 3u);
  EXPECT_EQ(v.find("list")->items()[2].as_number(), 3.0);
  EXPECT_TRUE(v.find("flag")->as_bool());
  EXPECT_TRUE(v.find("none")->is_null());
  EXPECT_TRUE(v.find("empty")->fields().empty());
  EXPECT_EQ(v.find("missing"), nullptr);

  EXPECT_THROW(util::json_parse("{\"a\":}"), util::CheckError);
  EXPECT_THROW(util::json_parse("[1, 2] garbage"), util::CheckError);
  EXPECT_THROW(util::json_parse("tru"), util::CheckError);
  EXPECT_THROW(util::json_parse(""), util::CheckError);
}

TEST(Telemetry, JsonlRoundTripsExactly) {
  runtime::SyncTelemetry a;
  a.round = 7;
  a.close_time_s = 100000.12345678912;  // late-training timestamp
  a.contributors = 4;
  a.gib_important = 3;
  a.gib_unimportant = 5;
  a.important_bytes = 123456.789;
  a.unimportant_bytes = 0.25;
  a.ics_budget_bytes = 2.5e8;
  a.lgp_correction_sq = 2.0;
  a.retries = 1;
  a.timeouts = 1;
  a.wire_bytes = 9.875e6;
  runtime::SyncTelemetry b;  // all defaults
  b.round = 8;

  TempFile file(temp_path("osp_obs_rounds.jsonl"));
  ASSERT_TRUE(runtime::write_telemetry_jsonl(file.path, {a, b}));

  std::ifstream in(file.path);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const util::JsonValue ra = util::json_parse(line);
  EXPECT_EQ(ra.find("round")->as_number(), 7.0);
  EXPECT_EQ(ra.find("close_time_s")->as_number(), a.close_time_s);  // exact
  EXPECT_EQ(ra.find("contributors")->as_number(), 4.0);
  EXPECT_EQ(ra.find("gib_important")->as_number(), 3.0);
  EXPECT_EQ(ra.find("gib_unimportant")->as_number(), 5.0);
  EXPECT_EQ(ra.find("important_bytes")->as_number(), a.important_bytes);
  EXPECT_EQ(ra.find("unimportant_bytes")->as_number(), 0.25);
  EXPECT_EQ(ra.find("ics_budget_bytes")->as_number(), 2.5e8);
  EXPECT_EQ(ra.find("lgp_correction_l2")->as_number(), std::sqrt(2.0));
  EXPECT_EQ(ra.find("retries")->as_number(), 1.0);
  EXPECT_EQ(ra.find("timeouts")->as_number(), 1.0);
  EXPECT_EQ(ra.find("wire_bytes")->as_number(), 9.875e6);

  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const util::JsonValue rb = util::json_parse(line);
  EXPECT_EQ(rb.find("round")->as_number(), 8.0);
  EXPECT_EQ(rb.find("wire_bytes")->as_number(), 0.0);
  EXPECT_FALSE(static_cast<bool>(std::getline(in, line)));
}

}  // namespace
}  // namespace osp
