// Tests for losses, metrics, the optimizer/schedule, and FlatModel.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"
#include "nn/qa_head.hpp"
#include "nn/registry.hpp"
#include "nn/sequential.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace osp::nn {
namespace {

using tensor::Tensor;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});  // all-zero logits → uniform softmax
  std::vector<std::int32_t> labels = {0, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 100.0f;
  std::vector<std::int32_t> labels = {1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(1);
  Tensor logits({3, 5});
  for (float& v : logits.data()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> labels = {4, 0, 2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor probe = logits;
    probe[i] += eps;
    const double up = softmax_cross_entropy(probe, labels).loss;
    probe[i] -= 2 * eps;
    const double down = softmax_cross_entropy(probe, labels).loss;
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, 1e-3) << "logit " << i;
  }
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  util::Rng rng(2);
  Tensor logits({2, 6});
  for (float& v : logits.data()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> labels = {1, 5};
  const LossResult r = softmax_cross_entropy(logits, labels);
  for (std::size_t row = 0; row < 2; ++row) {
    float sum = 0.0f;
    for (float v : r.grad_logits.row(row)) sum += v;
    EXPECT_NEAR(sum, 0.0f, 1e-6f);  // softmax grad sums to p−1 across row
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  std::vector<std::int32_t> labels = {3};
  EXPECT_THROW((void)softmax_cross_entropy(logits, labels),
               util::CheckError);
}

TEST(SpanCrossEntropy, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  Tensor logits({2, 8});  // seq_len 4
  for (float& v : logits.data()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> starts = {0, 2};
  std::vector<std::int32_t> ends = {1, 3};
  const LossResult r = span_cross_entropy(logits, starts, ends);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor probe = logits;
    probe[i] += eps;
    const double up = span_cross_entropy(probe, starts, ends).loss;
    probe[i] -= 2 * eps;
    const double down = span_cross_entropy(probe, starts, ends).loss;
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], fd, 1e-3) << "logit " << i;
  }
}

TEST(SpanCrossEntropy, RejectsOddWidth) {
  Tensor logits({1, 5});
  std::vector<std::int32_t> s = {0}, e = {0};
  EXPECT_THROW((void)span_cross_entropy(logits, s, e), util::CheckError);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor pred = Tensor::from({1.0f, 2.0f});
  Tensor target = Tensor::from({0.0f, 4.0f});
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.loss, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(r.grad_logits[0], 1.0f);   // 2*(1-0)/2
  EXPECT_FLOAT_EQ(r.grad_logits[1], -2.0f);  // 2*(2-4)/2
}

TEST(Metrics, Top1Accuracy) {
  Tensor logits({3, 3});
  logits.at(0, 0) = 1.0f;  // pred 0
  logits.at(1, 2) = 1.0f;  // pred 2
  logits.at(2, 1) = 1.0f;  // pred 1
  std::vector<std::int32_t> labels = {0, 2, 0};
  EXPECT_NEAR(top1_accuracy(logits, labels), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, ArgmaxFirstOnTies) {
  std::vector<float> xs = {1.0f, 3.0f, 3.0f};
  EXPECT_EQ(argmax(xs), 1u);
}

TEST(Metrics, SpanF1ExactMatch) {
  EXPECT_DOUBLE_EQ(span_f1(2, 4, 2, 4), 1.0);
}

TEST(Metrics, SpanF1NoOverlap) {
  EXPECT_DOUBLE_EQ(span_f1(0, 1, 3, 4), 0.0);
}

TEST(Metrics, SpanF1PartialOverlap) {
  // pred [0,1], gold [1,2]: overlap 1, precision 1/2, recall 1/2 → F1 1/2.
  EXPECT_DOUBLE_EQ(span_f1(0, 1, 1, 2), 0.5);
}

TEST(Metrics, SpanF1DegenerateSpans) {
  EXPECT_DOUBLE_EQ(span_f1(3, 2, 0, 1), 0.0);  // inverted pred
  EXPECT_DOUBLE_EQ(span_f1(1, 1, 1, 1), 1.0);  // single-token match
}

TEST(Metrics, BatchSpanF1PerfectModel) {
  // Logits that point exactly at the gold span.
  Tensor logits({1, 8});
  logits.at(0, 2) = 10.0f;      // start 2
  logits.at(0, 4 + 3) = 10.0f;  // end 3
  std::vector<std::int32_t> s = {2}, e = {3};
  EXPECT_DOUBLE_EQ(batch_span_f1(logits, s, e), 1.0);
}

TEST(StepLrSchedule, PaperDefaultHalvesEveryTen) {
  const StepLrSchedule sched = StepLrSchedule::paper_default();
  EXPECT_DOUBLE_EQ(sched.lr(0), 0.1);
  EXPECT_DOUBLE_EQ(sched.lr(9), 0.1);
  EXPECT_DOUBLE_EQ(sched.lr(10), 0.05);
  EXPECT_DOUBLE_EQ(sched.lr(20), 0.025);
  EXPECT_DOUBLE_EQ(sched.lr(35), 0.0125);
}

TEST(StepLrSchedule, RejectsBadParams) {
  EXPECT_THROW(StepLrSchedule(0.0, 10, 0.5), util::CheckError);
  EXPECT_THROW(StepLrSchedule(0.1, 0, 0.5), util::CheckError);
  EXPECT_THROW(StepLrSchedule(0.1, 10, 1.5), util::CheckError);
}

TEST(SgdOptimizer, PlainStep) {
  SgdOptimizer opt(2);
  std::vector<float> p = {1.0f, 2.0f};
  std::vector<float> g = {0.5f, -1.0f};
  opt.step(p, g, 0.1);
  EXPECT_FLOAT_EQ(p[0], 0.95f);
  EXPECT_FLOAT_EQ(p[1], 2.1f);
}

TEST(SgdOptimizer, MomentumAccumulates) {
  SgdOptimizer opt(1, 0.9);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt.step(p, g, 1.0);  // v=1, p=-1
  EXPECT_FLOAT_EQ(p[0], -1.0f);
  opt.step(p, g, 1.0);  // v=1.9, p=-2.9
  EXPECT_FLOAT_EQ(p[0], -2.9f);
}

TEST(SgdOptimizer, WeightDecayShrinks) {
  SgdOptimizer opt(1, 0.0, 0.1);
  std::vector<float> p = {10.0f};
  std::vector<float> g = {0.0f};
  opt.step(p, g, 1.0);
  EXPECT_FLOAT_EQ(p[0], 9.0f);  // p -= lr*wd*p
}

TEST(SgdOptimizer, StepRangeKeepsDisjointVelocity) {
  SgdOptimizer opt(4, 0.9);
  std::vector<float> p = {0, 0, 0, 0};
  std::vector<float> g_lo = {1.0f, 1.0f};
  // Two steps on [0,2) must not disturb velocity of [2,4).
  opt.step_range(std::span<float>(p).subspan(0, 2), g_lo, 1.0, 0);
  opt.step_range(std::span<float>(p).subspan(0, 2), g_lo, 1.0, 0);
  EXPECT_FLOAT_EQ(p[0], -2.9f);
  std::vector<float> g_hi = {1.0f, 1.0f};
  opt.step_range(std::span<float>(p).subspan(2, 2), g_hi, 1.0, 2);
  EXPECT_FLOAT_EQ(p[2], -1.0f);  // fresh velocity
}

TEST(SgdOptimizer, ResetStateClearsVelocity) {
  SgdOptimizer opt(1, 0.9);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt.step(p, g, 1.0);
  opt.reset_state();
  opt.step(p, g, 1.0);
  EXPECT_FLOAT_EQ(p[0], -2.0f);  // second step also -1
}

TEST(SgdOptimizer, SizeMismatchThrows) {
  SgdOptimizer opt(3);
  std::vector<float> p = {1, 2};
  std::vector<float> g = {1, 2};
  EXPECT_THROW(opt.step(p, g, 0.1), util::CheckError);
}

Sequential make_net(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential m;
  m.emplace<Linear>("fc0", 4, 6, rng);
  m.emplace<ReLU>("relu");
  m.emplace<Linear>("fc1", 6, 2, rng);
  return m;
}

TEST(FlatModel, BlocksCoverAllParams) {
  Sequential m = make_net(1);
  FlatModel flat(m);
  EXPECT_EQ(flat.num_blocks(), 2u);  // two Linear layers (ReLU stateless)
  EXPECT_EQ(flat.total_params(), m.num_params());
  EXPECT_EQ(flat.block(0).name, "fc0");
  EXPECT_EQ(flat.block(0).offset, 0u);
  EXPECT_EQ(flat.block(0).numel, 4u * 6 + 6);
  EXPECT_EQ(flat.block(1).offset, flat.block(0).numel);
}

TEST(FlatModel, GatherScatterRoundTrip) {
  Sequential m = make_net(2);
  FlatModel flat(m);
  std::vector<float> original(flat.total_params());
  flat.gather_params(original);
  std::vector<float> modified = original;
  for (float& v : modified) v += 1.0f;
  flat.scatter_params(modified);
  std::vector<float> readback(flat.total_params());
  flat.gather_params(readback);
  EXPECT_EQ(readback, modified);
}

TEST(FlatModel, GatherGradsMatchesLayerGrads) {
  Sequential m = make_net(3);
  FlatModel flat(m);
  util::Rng rng(4);
  Tensor in({2, 4});
  for (float& v : in.data()) v = static_cast<float>(rng.normal());
  m.zero_grad();
  const Tensor out = m.forward(in, true);
  Tensor g(out.shape());
  g.fill(1.0f);
  (void)m.backward(g);
  std::vector<float> grads(flat.total_params());
  flat.gather_grads(grads);
  // First weight grad element should match layer 0's grad tensor directly.
  auto params = m.params();
  EXPECT_FLOAT_EQ(grads[0], (*params[0].grad)[0]);
  // The last bias grad lands at the tail.
  const Tensor& last_bias_grad = *params.back().grad;
  EXPECT_FLOAT_EQ(grads.back(), last_bias_grad[last_bias_grad.numel() - 1]);
}

TEST(FlatModel, BlockSpanSlices) {
  Sequential m = make_net(5);
  FlatModel flat(m);
  std::vector<float> buf(flat.total_params(), 0.0f);
  auto s0 = flat.block_span(std::span<float>(buf), 0);
  auto s1 = flat.block_span(std::span<float>(buf), 1);
  EXPECT_EQ(s0.size(), flat.block(0).numel);
  EXPECT_EQ(s1.size(), flat.block(1).numel);
  EXPECT_EQ(s0.data() + s0.size(), s1.data());
}

TEST(FlatModel, ScatterAffectsForward) {
  Sequential m = make_net(6);
  FlatModel flat(m);
  Tensor in({1, 4}, 1.0f);
  const Tensor before = m.forward(in, false);
  std::vector<float> zeros(flat.total_params(), 0.0f);
  flat.scatter_params(zeros);
  const Tensor after = m.forward(in, false);
  for (float v : after.data()) EXPECT_FLOAT_EQ(v, 0.0f);
  (void)before;
}

TEST(SpanHead, GradCheck) {
  util::Rng rng(7);
  SpanHead head("span", 5, rng);
  Tensor in({2, 3, 5});
  for (float& v : in.data()) v = static_cast<float>(rng.normal());
  (void)head.forward(in, true);
  // Verify logits layout: start logits then end logits.
  const Tensor out = head.forward(in, true);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 6}));
}

}  // namespace
}  // namespace osp::nn
