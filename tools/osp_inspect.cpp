// osp_inspect — offline run inspector for OSP trace/telemetry artifacts.
//
// Reads the Chrome-trace JSON written by TraceRecorder::write_chrome_json
// (and optionally the telemetry JSONL written alongside it) and prints the
// summaries one otherwise digs out of chrome://tracing by hand:
//
//   * per-worker phase shares (compute / rs / ics / sync / downtime / ...)
//   * the ICS overlap ratio — what fraction of ICS transfer time ran
//     concurrently with the same worker's next-iteration compute (the
//     quantity Fig. 4 of the paper visualizes; 0 for any BSP-family run)
//   * top-K incast episodes: peak concurrent flows into a parameter server
//   * the S(G^u) budget trajectory from the ics_budget_bytes counter track
//
// Usage: osp_inspect trace.json [telemetry.jsonl] [--top K]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace {

using osp::runtime::TracePhase;
using osp::util::JsonValue;

constexpr std::size_t kIcsTidBase = 1000;  // mirrors trace.cpp

struct Span {
  std::size_t worker;
  std::string phase;
  double begin_s;
  double end_s;
};

struct Flow {
  std::string src;
  std::string dst;
  double begin_s;
  double end_s;
  double bytes;
  bool cancelled;
};

struct Counter {
  std::string name;
  double time_s;
  double value;
};

struct Trace {
  std::vector<Span> spans;  // includes ICS spans, mapped back to workers
  std::vector<Flow> flows;
  std::vector<Counter> counters;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OSP_CHECK(static_cast<bool>(in), "cannot open input file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double num_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  OSP_CHECK(v != nullptr, "missing numeric field");
  return v->as_number();
}

std::string str_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  OSP_CHECK(v != nullptr, "missing string field");
  return v->as_string();
}

Trace load_trace(const std::string& path) {
  const JsonValue doc = osp::util::json_parse(read_file(path));
  Trace t;
  for (const JsonValue& ev : doc.items()) {
    const std::string ph = str_field(ev, "ph");
    if (ph == "M") continue;  // track names — not needed here
    if (ph == "C") {
      const JsonValue* args = ev.find("args");
      OSP_CHECK(args != nullptr, "counter event without args");
      t.counters.push_back({str_field(ev, "name"),
                            num_field(ev, "ts") / 1e6,
                            num_field(*args, "value")});
      continue;
    }
    if (ph != "X") continue;
    const double ts = num_field(ev, "ts") / 1e6;
    const double dur = num_field(ev, "dur") / 1e6;
    const auto pid = static_cast<std::size_t>(num_field(ev, "pid"));
    const JsonValue* args = ev.find("args");
    if (pid == 1) {
      OSP_CHECK(args != nullptr, "flow event without args");
      t.flows.push_back({str_field(*args, "src"), str_field(*args, "dst"),
                         ts, ts + dur, num_field(*args, "bytes"),
                         num_field(*args, "cancelled") != 0.0});
      continue;
    }
    auto tid = static_cast<std::size_t>(num_field(ev, "tid"));
    if (tid >= kIcsTidBase) tid -= kIcsTidBase;  // ICS side track
    t.spans.push_back({tid, str_field(ev, "name"), ts, ts + dur});
  }
  return t;
}

void print_phase_shares(const Trace& t) {
  std::map<std::size_t, std::map<std::string, double>> per_worker;
  std::vector<std::string> phases;  // stable column order of appearance
  for (const Span& s : t.spans) {
    per_worker[s.worker][s.phase] += s.end_s - s.begin_s;
    if (std::find(phases.begin(), phases.end(), s.phase) == phases.end()) {
      phases.push_back(s.phase);
    }
  }
  std::printf("Per-worker phase shares\n");
  if (per_worker.empty()) {
    std::printf("  (no spans)\n\n");
    return;
  }
  std::printf("  %-8s", "worker");
  for (const std::string& p : phases) std::printf(" %10s", p.c_str());
  std::printf("\n");
  for (const auto& [w, totals] : per_worker) {
    double sum = 0.0;
    for (const auto& [p, d] : totals) sum += d;
    std::printf("  %-8zu", w);
    for (const std::string& p : phases) {
      const auto it = totals.find(p);
      const double share =
          (it != totals.end() && sum > 0.0) ? it->second / sum : 0.0;
      std::printf(" %9.1f%%", 100.0 * share);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// Fraction of total ICS span time that overlaps the SAME worker's compute
// spans. ICS is only useful when it hides behind next-iteration compute,
// so this is the one-number health check for the second stage.
double ics_overlap_ratio(const Trace& t) {
  std::map<std::size_t, std::vector<const Span*>> compute;
  for (const Span& s : t.spans) {
    if (s.phase == "compute") compute[s.worker].push_back(&s);
  }
  double ics_total = 0.0, ics_overlapped = 0.0;
  for (const Span& s : t.spans) {
    if (s.phase != "ics") continue;
    ics_total += s.end_s - s.begin_s;
    const auto it = compute.find(s.worker);
    if (it == compute.end()) continue;
    for (const Span* c : it->second) {
      const double lo = std::max(s.begin_s, c->begin_s);
      const double hi = std::min(s.end_s, c->end_s);
      if (hi > lo) ics_overlapped += hi - lo;
    }
  }
  return ics_total > 0.0 ? ics_overlapped / ics_total : 0.0;
}

struct Incast {
  double time_s;
  std::string dst;
  std::size_t concurrent;
  double bytes_in_flight;
};

// Peak concurrent flows into each parameter-server destination, evaluated
// at flow-start instants (concurrency only increases at starts).
std::vector<Incast> incast_episodes(const Trace& t, std::size_t top_k) {
  std::vector<Incast> all;
  for (const Flow& f : t.flows) {
    if (f.dst.rfind("ps", 0) != 0) continue;
    std::size_t concurrent = 0;
    double bytes = 0.0;
    for (const Flow& g : t.flows) {
      if (g.dst != f.dst) continue;
      if (g.begin_s <= f.begin_s && f.begin_s < g.end_s) {
        ++concurrent;
        bytes += g.bytes;
      }
    }
    all.push_back({f.begin_s, f.dst, concurrent, bytes});
  }
  std::sort(all.begin(), all.end(), [](const Incast& a, const Incast& b) {
    if (a.concurrent != b.concurrent) return a.concurrent > b.concurrent;
    return a.time_s < b.time_s;
  });
  // Keep at most one episode per (dst, concurrency) within a small window
  // so the list is K distinct episodes, not K samples of one burst.
  std::vector<Incast> picked;
  for (const Incast& c : all) {
    bool dup = false;
    for (const Incast& p : picked) {
      if (p.dst == c.dst && p.concurrent == c.concurrent &&
          std::abs(p.time_s - c.time_s) < 1e-3) {
        dup = true;
        break;
      }
    }
    if (!dup) picked.push_back(c);
    if (picked.size() == top_k) break;
  }
  return picked;
}

void print_budget_trajectory(const Trace& t) {
  std::printf("S(G^u) budget trajectory (ics_budget_bytes)\n");
  bool any = false;
  double last = -1.0;
  for (const Counter& c : t.counters) {
    if (c.name != "ics_budget_bytes") continue;
    if (any && c.value == last) continue;  // dedupe flat stretches
    std::printf("  t=%12.6fs  budget=%.0f bytes\n", c.time_s, c.value);
    last = c.value;
    any = true;
  }
  if (!any) std::printf("  (no budget counter track)\n");
  std::printf("\n");
}

void print_telemetry(const std::string& path) {
  std::ifstream in(path);
  OSP_CHECK(static_cast<bool>(in), "cannot open telemetry file");
  std::size_t rounds = 0, retries = 0, timeouts = 0;
  double important = 0.0, unimportant = 0.0, wire = 0.0, correction = 0.0;
  double contributors = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue rec = osp::util::json_parse(line);
    ++rounds;
    contributors += num_field(rec, "contributors");
    important += num_field(rec, "important_bytes");
    unimportant += num_field(rec, "unimportant_bytes");
    wire += num_field(rec, "wire_bytes");
    correction += num_field(rec, "lgp_correction_l2");
    retries += static_cast<std::size_t>(num_field(rec, "retries"));
    timeouts += static_cast<std::size_t>(num_field(rec, "timeouts"));
  }
  std::printf("Sync telemetry (%s)\n", path.c_str());
  std::printf("  rounds:            %zu\n", rounds);
  if (rounds > 0) {
    std::printf("  mean contributors: %.2f\n",
                contributors / static_cast<double>(rounds));
    std::printf("  important bytes:   %.0f\n", important);
    std::printf("  unimportant bytes: %.0f\n", unimportant);
    const double total = important + unimportant;
    if (total > 0.0) {
      std::printf("  important share:   %.1f%%\n", 100.0 * important / total);
    }
    std::printf("  wire bytes:        %.0f\n", wire);
    std::printf("  sum LGP |corr|:    %.6g\n", correction);
    std::printf("  retries/timeouts:  %zu/%zu\n", retries, timeouts);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, telemetry_path;
  std::size_t top_k = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      OSP_CHECK(i + 1 < argc, "--top needs a value");
      top_k = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      telemetry_path = arg;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: osp_inspect trace.json [telemetry.jsonl] [--top K]\n");
    return 2;
  }

  try {
    const Trace t = load_trace(trace_path);
    std::printf("Trace %s: %zu spans, %zu flows, %zu counter samples\n\n",
                trace_path.c_str(), t.spans.size(), t.flows.size(),
                t.counters.size());

    print_phase_shares(t);
    std::printf("ICS overlap ratio: %.4f\n\n", ics_overlap_ratio(t));

    std::printf("Top incast episodes (flows into one PS)\n");
    const std::vector<Incast> incasts = incast_episodes(t, top_k);
    if (incasts.empty()) {
      std::printf("  (no PS-bound flows)\n");
    }
    for (const Incast& c : incasts) {
      std::printf("  t=%12.6fs  %-6s %3zu concurrent, %.0f bytes in flight\n",
                  c.time_s, c.dst.c_str(), c.concurrent, c.bytes_in_flight);
    }
    std::printf("\n");

    print_budget_trajectory(t);

    if (!telemetry_path.empty()) print_telemetry(telemetry_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "osp_inspect: %s\n", e.what());
    return 1;
  }
  return 0;
}
