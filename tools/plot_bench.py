#!/usr/bin/env python3
"""Plot the figure CSVs produced by the bench harnesses.

Usage:
    python3 tools/plot_bench.py [bench_out_dir] [output_dir]

Reads every CSV in bench_out/ (written by `./run_benches.sh`) and renders
one PNG per figure under plots/. Requires matplotlib; the script degrades
to printing a summary when it is unavailable, so CI without matplotlib
still exercises the parsing path.
"""

import csv
import pathlib
import sys


def read_csv(path: pathlib.Path):
    with path.open(newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def numeric(cell: str):
    """Best-effort numeric parse: strips %, x, parenthesised alternates."""
    token = cell.strip().split(" ")[0]
    for suffix in ("%", "x", "pp"):
        if token.endswith(suffix):
            token = token[: -len(suffix)]
    try:
        return float(token)
    except ValueError:
        return None


def plot_all(src: pathlib.Path, dst: pathlib.Path) -> int:
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable — summary only")
        plt = None

    count = 0
    for path in sorted(src.glob("*.csv")):
        header, rows = read_csv(path)
        if not rows:
            continue
        print(f"{path.name}: {len(rows)} rows × {len(header)} cols")
        if plt is None:
            continue
        # Generic rendering: first column is the category axis; every
        # numeric column becomes a series.
        labels = [row[0] for row in rows]
        fig, ax = plt.subplots(figsize=(8, 4.5))
        plotted = False
        for col in range(1, len(header)):
            values = [numeric(row[col]) for row in rows]
            if any(v is None for v in values):
                continue
            ax.plot(range(len(labels)), values, marker="o",
                    label=header[col])
            plotted = True
        if not plotted:
            plt.close(fig)
            continue
        ax.set_xticks(range(len(labels)))
        ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=7)
        ax.set_title(path.stem)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        dst.mkdir(parents=True, exist_ok=True)
        fig.savefig(dst / f"{path.stem}.png", dpi=130)
        plt.close(fig)
        count += 1
    return count


def main() -> int:
    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_out")
    dst = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "plots")
    if not src.is_dir():
        print(f"no such directory: {src} — run ./run_benches.sh first")
        return 1
    rendered = plot_all(src, dst)
    print(f"rendered {rendered} figure(s) into {dst}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
