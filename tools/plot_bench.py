#!/usr/bin/env python3
"""Plot the figure CSVs and bench JSON produced by the bench harnesses.

Usage:
    python3 tools/plot_bench.py [bench_out_dir] [output_dir]

Reads every CSV in bench_out/ (written by `./run_benches.sh`) and renders
one PNG per figure under plots/. The worker-scaling sweep
(ext_scaling_workers.csv) additionally gets a dedicated throughput-vs-
workers plot on a numeric log2 x-axis. BENCH_micro_network.json (the
network micro-bench emitter) is rendered as the incremental-solver
flow-visit ratio vs worker count. Requires matplotlib; the script
degrades to printing a summary when it is unavailable, so CI without
matplotlib still exercises the parsing path.
"""

import csv
import json
import pathlib
import sys


def read_csv(path: pathlib.Path):
    with path.open(newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def numeric(cell: str):
    """Best-effort numeric parse: strips %, x, parenthesised alternates."""
    token = cell.strip().split(" ")[0]
    for suffix in ("%", "x", "pp"):
        if token.endswith(suffix):
            token = token[: -len(suffix)]
    try:
        return float(token)
    except ValueError:
        return None


def plot_worker_scaling(path: pathlib.Path, dst: pathlib.Path, plt) -> int:
    """Throughput vs worker count from ext_scaling_workers.csv, with the
    worker count as a real numeric (log2) axis rather than categories."""
    header, rows = read_csv(path)
    if not rows:
        return 0
    workers = [numeric(row[0]) for row in rows]
    if any(w is None for w in workers):
        return 0
    fig, ax = plt.subplots(figsize=(8, 4.5))
    plotted = False
    for col, name in enumerate(header):
        if not name.endswith("tput"):
            continue
        values = [numeric(row[col]) for row in rows]
        if any(v is None for v in values):
            continue
        ax.plot(workers, values, marker="o", label=name)
        plotted = True
    if not plotted:
        plt.close(fig)
        return 0
    ax.set_xscale("log", base=2)
    ax.set_xticks(workers)
    ax.set_xticklabels([str(int(w)) for w in workers])
    ax.set_xlabel("workers")
    ax.set_ylabel("throughput (images/s)")
    ax.set_title("worker scaling, single PS (ext §6.1a)")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    dst.mkdir(parents=True, exist_ok=True)
    fig.savefig(dst / "ext_scaling_throughput_vs_workers.png", dpi=130)
    plt.close(fig)
    return 1


def plot_network_json(path: pathlib.Path, dst: pathlib.Path, plt) -> int:
    """Flow-visit reduction (reference / incremental solver) vs worker
    count from the RoundTripChurn records of BENCH_micro_network.json."""
    try:
        records = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as err:
        print(f"{path.name}: unreadable ({err})")
        return 0
    churn = [r for r in records if r.get("op") == "RoundTripChurn"
             and "workers" in r and "visit_ratio" in r]
    print(f"{path.name}: {len(records)} records, {len(churn)} churn points")
    if not churn or plt is None:
        return 0
    # One series per rack count (shape is "racks/workers_per_rack").
    by_racks = {}
    for r in sorted(churn, key=lambda r: r["workers"]):
        racks = r.get("shape", "?").split("/")[0]
        by_racks.setdefault(racks, []).append((r["workers"],
                                               r["visit_ratio"]))
    fig, ax = plt.subplots(figsize=(8, 4.5))
    for racks, points in sorted(by_racks.items()):
        ax.plot([p[0] for p in points], [p[1] for p in points],
                marker="o", label=f"{racks} PS shard(s)")
    ax.axhline(5.0, linestyle="--", alpha=0.5, label="5x target")
    ax.set_xscale("log", base=2)
    ax.set_yscale("log")
    ax.set_xlabel("workers")
    ax.set_ylabel("flow visits: reference / incremental")
    ax.set_title("incremental rate-solver reduction (micro_network)")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    dst.mkdir(parents=True, exist_ok=True)
    fig.savefig(dst / "micro_network_visit_ratio.png", dpi=130)
    plt.close(fig)
    return 1


def plot_all(src: pathlib.Path, dst: pathlib.Path) -> int:
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable — summary only")
        plt = None

    count = 0
    for path in sorted(src.glob("*.csv")):
        header, rows = read_csv(path)
        if not rows:
            continue
        print(f"{path.name}: {len(rows)} rows × {len(header)} cols")
        if plt is None:
            continue
        # Generic rendering: first column is the category axis; every
        # numeric column becomes a series.
        labels = [row[0] for row in rows]
        fig, ax = plt.subplots(figsize=(8, 4.5))
        plotted = False
        for col in range(1, len(header)):
            values = [numeric(row[col]) for row in rows]
            if any(v is None for v in values):
                continue
            ax.plot(range(len(labels)), values, marker="o",
                    label=header[col])
            plotted = True
        if not plotted:
            plt.close(fig)
            continue
        ax.set_xticks(range(len(labels)))
        ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=7)
        ax.set_title(path.stem)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        dst.mkdir(parents=True, exist_ok=True)
        fig.savefig(dst / f"{path.stem}.png", dpi=130)
        plt.close(fig)
        count += 1
    if plt is not None:
        scaling = src / "ext_scaling_workers.csv"
        if scaling.is_file():
            count += plot_worker_scaling(scaling, dst, plt)
    for json_path in sorted(src.glob("BENCH_micro_network.json")):
        count += plot_network_json(json_path, dst, plt)
    return count


def main() -> int:
    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_out")
    dst = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "plots")
    if not src.is_dir():
        print(f"no such directory: {src} — run ./run_benches.sh first")
        return 1
    rendered = plot_all(src, dst)
    print(f"rendered {rendered} figure(s) into {dst}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
