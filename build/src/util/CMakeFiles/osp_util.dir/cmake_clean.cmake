file(REMOVE_RECURSE
  "CMakeFiles/osp_util.dir/logging.cpp.o"
  "CMakeFiles/osp_util.dir/logging.cpp.o.d"
  "CMakeFiles/osp_util.dir/rng.cpp.o"
  "CMakeFiles/osp_util.dir/rng.cpp.o.d"
  "CMakeFiles/osp_util.dir/stats.cpp.o"
  "CMakeFiles/osp_util.dir/stats.cpp.o.d"
  "CMakeFiles/osp_util.dir/table.cpp.o"
  "CMakeFiles/osp_util.dir/table.cpp.o.d"
  "CMakeFiles/osp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/osp_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/osp_util.dir/vec_math.cpp.o"
  "CMakeFiles/osp_util.dir/vec_math.cpp.o.d"
  "libosp_util.a"
  "libosp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
