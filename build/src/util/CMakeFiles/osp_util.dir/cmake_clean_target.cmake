file(REMOVE_RECURSE
  "libosp_util.a"
)
