# Empty compiler generated dependencies file for osp_util.
# This may be replaced when dependencies are built.
