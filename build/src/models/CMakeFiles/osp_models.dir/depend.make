# Empty dependencies file for osp_models.
# This may be replaced when dependencies are built.
