file(REMOVE_RECURSE
  "libosp_models.a"
)
