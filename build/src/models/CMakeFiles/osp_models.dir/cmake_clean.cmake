file(REMOVE_RECURSE
  "CMakeFiles/osp_models.dir/zoo.cpp.o"
  "CMakeFiles/osp_models.dir/zoo.cpp.o.d"
  "libosp_models.a"
  "libosp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
