file(REMOVE_RECURSE
  "CMakeFiles/osp_core.dir/gib.cpp.o"
  "CMakeFiles/osp_core.dir/gib.cpp.o.d"
  "CMakeFiles/osp_core.dir/lgp.cpp.o"
  "CMakeFiles/osp_core.dir/lgp.cpp.o.d"
  "CMakeFiles/osp_core.dir/osp_sync.cpp.o"
  "CMakeFiles/osp_core.dir/osp_sync.cpp.o.d"
  "CMakeFiles/osp_core.dir/pgp.cpp.o"
  "CMakeFiles/osp_core.dir/pgp.cpp.o.d"
  "CMakeFiles/osp_core.dir/tuning.cpp.o"
  "CMakeFiles/osp_core.dir/tuning.cpp.o.d"
  "libosp_core.a"
  "libosp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
