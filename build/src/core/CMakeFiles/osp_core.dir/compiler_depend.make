# Empty compiler generated dependencies file for osp_core.
# This may be replaced when dependencies are built.
