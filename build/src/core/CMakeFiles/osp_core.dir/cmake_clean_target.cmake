file(REMOVE_RECURSE
  "libosp_core.a"
)
