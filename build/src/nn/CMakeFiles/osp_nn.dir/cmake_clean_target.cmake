file(REMOVE_RECURSE
  "libosp_nn.a"
)
