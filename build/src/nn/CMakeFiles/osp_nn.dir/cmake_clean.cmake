file(REMOVE_RECURSE
  "CMakeFiles/osp_nn.dir/activations.cpp.o"
  "CMakeFiles/osp_nn.dir/activations.cpp.o.d"
  "CMakeFiles/osp_nn.dir/attention.cpp.o"
  "CMakeFiles/osp_nn.dir/attention.cpp.o.d"
  "CMakeFiles/osp_nn.dir/conv2d.cpp.o"
  "CMakeFiles/osp_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/osp_nn.dir/embedding.cpp.o"
  "CMakeFiles/osp_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/osp_nn.dir/layer.cpp.o"
  "CMakeFiles/osp_nn.dir/layer.cpp.o.d"
  "CMakeFiles/osp_nn.dir/linear.cpp.o"
  "CMakeFiles/osp_nn.dir/linear.cpp.o.d"
  "CMakeFiles/osp_nn.dir/loss.cpp.o"
  "CMakeFiles/osp_nn.dir/loss.cpp.o.d"
  "CMakeFiles/osp_nn.dir/metrics.cpp.o"
  "CMakeFiles/osp_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/osp_nn.dir/norm.cpp.o"
  "CMakeFiles/osp_nn.dir/norm.cpp.o.d"
  "CMakeFiles/osp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/osp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/osp_nn.dir/qa_head.cpp.o"
  "CMakeFiles/osp_nn.dir/qa_head.cpp.o.d"
  "CMakeFiles/osp_nn.dir/registry.cpp.o"
  "CMakeFiles/osp_nn.dir/registry.cpp.o.d"
  "CMakeFiles/osp_nn.dir/sequential.cpp.o"
  "CMakeFiles/osp_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/osp_nn.dir/serialize.cpp.o"
  "CMakeFiles/osp_nn.dir/serialize.cpp.o.d"
  "libosp_nn.a"
  "libosp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
