# Empty compiler generated dependencies file for osp_nn.
# This may be replaced when dependencies are built.
