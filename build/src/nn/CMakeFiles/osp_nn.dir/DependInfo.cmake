
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/osp_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/osp_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/osp_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/osp_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/osp_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/osp_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/osp_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/osp_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/osp_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/osp_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/qa_head.cpp" "src/nn/CMakeFiles/osp_nn.dir/qa_head.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/qa_head.cpp.o.d"
  "/root/repo/src/nn/registry.cpp" "src/nn/CMakeFiles/osp_nn.dir/registry.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/registry.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/osp_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/osp_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/osp_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/osp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
