# Empty dependencies file for osp_data.
# This may be replaced when dependencies are built.
