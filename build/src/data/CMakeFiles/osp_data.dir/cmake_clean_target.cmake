file(REMOVE_RECURSE
  "libosp_data.a"
)
