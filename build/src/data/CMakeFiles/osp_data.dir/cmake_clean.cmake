file(REMOVE_RECURSE
  "CMakeFiles/osp_data.dir/loader.cpp.o"
  "CMakeFiles/osp_data.dir/loader.cpp.o.d"
  "CMakeFiles/osp_data.dir/synthetic_image.cpp.o"
  "CMakeFiles/osp_data.dir/synthetic_image.cpp.o.d"
  "CMakeFiles/osp_data.dir/synthetic_qa.cpp.o"
  "CMakeFiles/osp_data.dir/synthetic_qa.cpp.o.d"
  "libosp_data.a"
  "libosp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
