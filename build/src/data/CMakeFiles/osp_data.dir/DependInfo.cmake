
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/loader.cpp" "src/data/CMakeFiles/osp_data.dir/loader.cpp.o" "gcc" "src/data/CMakeFiles/osp_data.dir/loader.cpp.o.d"
  "/root/repo/src/data/synthetic_image.cpp" "src/data/CMakeFiles/osp_data.dir/synthetic_image.cpp.o" "gcc" "src/data/CMakeFiles/osp_data.dir/synthetic_image.cpp.o.d"
  "/root/repo/src/data/synthetic_qa.cpp" "src/data/CMakeFiles/osp_data.dir/synthetic_qa.cpp.o" "gcc" "src/data/CMakeFiles/osp_data.dir/synthetic_qa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/osp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
