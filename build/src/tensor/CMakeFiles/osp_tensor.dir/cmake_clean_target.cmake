file(REMOVE_RECURSE
  "libosp_tensor.a"
)
