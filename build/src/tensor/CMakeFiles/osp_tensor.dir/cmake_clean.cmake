file(REMOVE_RECURSE
  "CMakeFiles/osp_tensor.dir/init.cpp.o"
  "CMakeFiles/osp_tensor.dir/init.cpp.o.d"
  "CMakeFiles/osp_tensor.dir/ops.cpp.o"
  "CMakeFiles/osp_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/osp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/osp_tensor.dir/tensor.cpp.o.d"
  "libosp_tensor.a"
  "libosp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
