# Empty compiler generated dependencies file for osp_tensor.
# This may be replaced when dependencies are built.
