# Empty dependencies file for osp_sync.
# This may be replaced when dependencies are built.
