
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/asp.cpp" "src/sync/CMakeFiles/osp_sync.dir/asp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/asp.cpp.o.d"
  "/root/repo/src/sync/bsp.cpp" "src/sync/CMakeFiles/osp_sync.dir/bsp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/bsp.cpp.o.d"
  "/root/repo/src/sync/casp.cpp" "src/sync/CMakeFiles/osp_sync.dir/casp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/casp.cpp.o.d"
  "/root/repo/src/sync/compression.cpp" "src/sync/CMakeFiles/osp_sync.dir/compression.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/compression.cpp.o.d"
  "/root/repo/src/sync/dssp.cpp" "src/sync/CMakeFiles/osp_sync.dir/dssp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/dssp.cpp.o.d"
  "/root/repo/src/sync/r2sp.cpp" "src/sync/CMakeFiles/osp_sync.dir/r2sp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/r2sp.cpp.o.d"
  "/root/repo/src/sync/sharded_bsp.cpp" "src/sync/CMakeFiles/osp_sync.dir/sharded_bsp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/sharded_bsp.cpp.o.d"
  "/root/repo/src/sync/sharding.cpp" "src/sync/CMakeFiles/osp_sync.dir/sharding.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/sharding.cpp.o.d"
  "/root/repo/src/sync/ssp.cpp" "src/sync/CMakeFiles/osp_sync.dir/ssp.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/ssp.cpp.o.d"
  "/root/repo/src/sync/sync_switch.cpp" "src/sync/CMakeFiles/osp_sync.dir/sync_switch.cpp.o" "gcc" "src/sync/CMakeFiles/osp_sync.dir/sync_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/osp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/osp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/osp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/osp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
