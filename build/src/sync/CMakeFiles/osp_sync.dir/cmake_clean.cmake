file(REMOVE_RECURSE
  "CMakeFiles/osp_sync.dir/asp.cpp.o"
  "CMakeFiles/osp_sync.dir/asp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/bsp.cpp.o"
  "CMakeFiles/osp_sync.dir/bsp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/casp.cpp.o"
  "CMakeFiles/osp_sync.dir/casp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/compression.cpp.o"
  "CMakeFiles/osp_sync.dir/compression.cpp.o.d"
  "CMakeFiles/osp_sync.dir/dssp.cpp.o"
  "CMakeFiles/osp_sync.dir/dssp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/r2sp.cpp.o"
  "CMakeFiles/osp_sync.dir/r2sp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/sharded_bsp.cpp.o"
  "CMakeFiles/osp_sync.dir/sharded_bsp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/sharding.cpp.o"
  "CMakeFiles/osp_sync.dir/sharding.cpp.o.d"
  "CMakeFiles/osp_sync.dir/ssp.cpp.o"
  "CMakeFiles/osp_sync.dir/ssp.cpp.o.d"
  "CMakeFiles/osp_sync.dir/sync_switch.cpp.o"
  "CMakeFiles/osp_sync.dir/sync_switch.cpp.o.d"
  "libosp_sync.a"
  "libosp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
