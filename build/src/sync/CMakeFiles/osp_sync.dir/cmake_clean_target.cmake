file(REMOVE_RECURSE
  "libosp_sync.a"
)
