file(REMOVE_RECURSE
  "CMakeFiles/osp_sim.dir/cluster.cpp.o"
  "CMakeFiles/osp_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/osp_sim.dir/network.cpp.o"
  "CMakeFiles/osp_sim.dir/network.cpp.o.d"
  "CMakeFiles/osp_sim.dir/simulator.cpp.o"
  "CMakeFiles/osp_sim.dir/simulator.cpp.o.d"
  "libosp_sim.a"
  "libosp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
