file(REMOVE_RECURSE
  "libosp_sim.a"
)
