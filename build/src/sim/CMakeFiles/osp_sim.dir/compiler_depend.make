# Empty compiler generated dependencies file for osp_sim.
# This may be replaced when dependencies are built.
