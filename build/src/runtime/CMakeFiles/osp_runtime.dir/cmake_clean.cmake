file(REMOVE_RECURSE
  "CMakeFiles/osp_runtime.dir/engine.cpp.o"
  "CMakeFiles/osp_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/osp_runtime.dir/metrics.cpp.o"
  "CMakeFiles/osp_runtime.dir/metrics.cpp.o.d"
  "CMakeFiles/osp_runtime.dir/trace.cpp.o"
  "CMakeFiles/osp_runtime.dir/trace.cpp.o.d"
  "libosp_runtime.a"
  "libosp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
