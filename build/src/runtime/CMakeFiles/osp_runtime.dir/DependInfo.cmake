
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/osp_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/osp_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/runtime/CMakeFiles/osp_runtime.dir/metrics.cpp.o" "gcc" "src/runtime/CMakeFiles/osp_runtime.dir/metrics.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/osp_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/osp_runtime.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/osp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/osp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/osp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
