# Empty compiler generated dependencies file for osp_runtime.
# This may be replaced when dependencies are built.
