file(REMOVE_RECURSE
  "libosp_runtime.a"
)
