# Empty compiler generated dependencies file for bench_ext_scaling.
# This may be replaced when dependencies are built.
