file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tta_nlp.dir/bench_fig8_tta_nlp.cpp.o"
  "CMakeFiles/bench_fig8_tta_nlp.dir/bench_fig8_tta_nlp.cpp.o.d"
  "bench_fig8_tta_nlp"
  "bench_fig8_tta_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tta_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
