# Empty dependencies file for bench_fig8_tta_nlp.
# This may be replaced when dependencies are built.
