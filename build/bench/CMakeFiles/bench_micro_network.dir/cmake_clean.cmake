file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_network.dir/bench_micro_network.cpp.o"
  "CMakeFiles/bench_micro_network.dir/bench_micro_network.cpp.o.d"
  "bench_micro_network"
  "bench_micro_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
