# Empty dependencies file for bench_micro_network.
# This may be replaced when dependencies are built.
