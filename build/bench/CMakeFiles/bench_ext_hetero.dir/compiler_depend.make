# Empty compiler generated dependencies file for bench_ext_hetero.
# This may be replaced when dependencies are built.
