file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hetero.dir/bench_ext_hetero.cpp.o"
  "CMakeFiles/bench_ext_hetero.dir/bench_ext_hetero.cpp.o.d"
  "bench_ext_hetero"
  "bench_ext_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
