file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bsp_asp_gap.dir/bench_fig12_bsp_asp_gap.cpp.o"
  "CMakeFiles/bench_fig12_bsp_asp_gap.dir/bench_fig12_bsp_asp_gap.cpp.o.d"
  "bench_fig12_bsp_asp_gap"
  "bench_fig12_bsp_asp_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bsp_asp_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
