# Empty dependencies file for bench_fig12_bsp_asp_gap.
# This may be replaced when dependencies are built.
