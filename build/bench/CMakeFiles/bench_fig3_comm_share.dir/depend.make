# Empty dependencies file for bench_fig3_comm_share.
# This may be replaced when dependencies are built.
