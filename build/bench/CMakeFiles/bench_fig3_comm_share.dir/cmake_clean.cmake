file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_comm_share.dir/bench_fig3_comm_share.cpp.o"
  "CMakeFiles/bench_fig3_comm_share.dir/bench_fig3_comm_share.cpp.o.d"
  "bench_fig3_comm_share"
  "bench_fig3_comm_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_comm_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
