# Empty compiler generated dependencies file for bench_ablation_lgp.
# This may be replaced when dependencies are built.
