file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lgp.dir/bench_ablation_lgp.cpp.o"
  "CMakeFiles/bench_ablation_lgp.dir/bench_ablation_lgp.cpp.o.d"
  "bench_ablation_lgp"
  "bench_ablation_lgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
