
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_colocated.cpp" "bench/CMakeFiles/bench_fig9_colocated.dir/bench_fig9_colocated.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_colocated.dir/bench_fig9_colocated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/osp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/osp_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/osp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/osp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/osp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/osp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/osp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/osp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
