# Empty dependencies file for bench_ablation_tuning.
# This may be replaced when dependencies are built.
