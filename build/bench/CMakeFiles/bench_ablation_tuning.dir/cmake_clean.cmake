file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tuning.dir/bench_ablation_tuning.cpp.o"
  "CMakeFiles/bench_ablation_tuning.dir/bench_ablation_tuning.cpp.o.d"
  "bench_ablation_tuning"
  "bench_ablation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
