# Empty compiler generated dependencies file for bench_fig7_tta_image.
# This may be replaced when dependencies are built.
