file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tta_image.dir/bench_fig7_tta_image.cpp.o"
  "CMakeFiles/bench_fig7_tta_image.dir/bench_fig7_tta_image.cpp.o.d"
  "bench_fig7_tta_image"
  "bench_fig7_tta_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tta_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
