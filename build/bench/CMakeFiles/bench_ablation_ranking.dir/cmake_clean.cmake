file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ranking.dir/bench_ablation_ranking.cpp.o"
  "CMakeFiles/bench_ablation_ranking.dir/bench_ablation_ranking.cpp.o.d"
  "bench_ablation_ranking"
  "bench_ablation_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
