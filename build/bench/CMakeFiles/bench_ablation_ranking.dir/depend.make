# Empty dependencies file for bench_ablation_ranking.
# This may be replaced when dependencies are built.
