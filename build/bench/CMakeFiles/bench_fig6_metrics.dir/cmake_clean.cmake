file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_metrics.dir/bench_fig6_metrics.cpp.o"
  "CMakeFiles/bench_fig6_metrics.dir/bench_fig6_metrics.cpp.o.d"
  "bench_fig6_metrics"
  "bench_fig6_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
