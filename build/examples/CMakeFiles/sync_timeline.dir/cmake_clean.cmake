file(REMOVE_RECURSE
  "CMakeFiles/sync_timeline.dir/sync_timeline.cpp.o"
  "CMakeFiles/sync_timeline.dir/sync_timeline.cpp.o.d"
  "sync_timeline"
  "sync_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
