# Empty dependencies file for sync_timeline.
# This may be replaced when dependencies are built.
