# Empty dependencies file for custom_sync_model.
# This may be replaced when dependencies are built.
