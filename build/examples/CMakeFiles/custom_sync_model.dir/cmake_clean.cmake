file(REMOVE_RECURSE
  "CMakeFiles/custom_sync_model.dir/custom_sync_model.cpp.o"
  "CMakeFiles/custom_sync_model.dir/custom_sync_model.cpp.o.d"
  "custom_sync_model"
  "custom_sync_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_sync_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
