# Empty compiler generated dependencies file for nlp_finetune.
# This may be replaced when dependencies are built.
