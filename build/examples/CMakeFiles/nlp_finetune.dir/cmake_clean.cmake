file(REMOVE_RECURSE
  "CMakeFiles/nlp_finetune.dir/nlp_finetune.cpp.o"
  "CMakeFiles/nlp_finetune.dir/nlp_finetune.cpp.o.d"
  "nlp_finetune"
  "nlp_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
