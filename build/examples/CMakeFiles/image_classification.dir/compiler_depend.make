# Empty compiler generated dependencies file for image_classification.
# This may be replaced when dependencies are built.
