file(REMOVE_RECURSE
  "CMakeFiles/image_classification.dir/image_classification.cpp.o"
  "CMakeFiles/image_classification.dir/image_classification.cpp.o.d"
  "image_classification"
  "image_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
