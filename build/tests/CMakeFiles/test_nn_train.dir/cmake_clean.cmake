file(REMOVE_RECURSE
  "CMakeFiles/test_nn_train.dir/test_nn_train.cpp.o"
  "CMakeFiles/test_nn_train.dir/test_nn_train.cpp.o.d"
  "test_nn_train"
  "test_nn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
