# Empty dependencies file for test_nn_train.
# This may be replaced when dependencies are built.
