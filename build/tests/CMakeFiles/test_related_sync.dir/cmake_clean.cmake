file(REMOVE_RECURSE
  "CMakeFiles/test_related_sync.dir/test_related_sync.cpp.o"
  "CMakeFiles/test_related_sync.dir/test_related_sync.cpp.o.d"
  "test_related_sync"
  "test_related_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
