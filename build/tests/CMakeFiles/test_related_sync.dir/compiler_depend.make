# Empty compiler generated dependencies file for test_related_sync.
# This may be replaced when dependencies are built.
